#include "online/online.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "common/rng.hpp"
#include "sched/timeline.hpp"

namespace saga::online {

double ExecutionView::data_ready(const RevealedTask& task, NodeId v) const {
  double ready = 0.0;
  for (const auto& [pred, home] : task.input_home) {
    const double produced = (*task_finish_)[pred];
    const double arrival =
        produced + inst_->network.comm_time(inst_->graph.dependency_cost(pred, task.task),
                                            home, v);
    ready = std::max(ready, arrival);
  }
  return ready;
}

double ExecutionView::earliest_start(const RevealedTask& task, NodeId v) const {
  return std::max(data_ready(task, v), node_free(v));
}

double ExecutionView::earliest_finish(const RevealedTask& task, NodeId v) const {
  return earliest_start(task, v) + inst_->network.exec_time(task.cost, v);
}

namespace {

class EftPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "online-EFT"; }
  [[nodiscard]] NodeId place(const RevealedTask& task, const ExecutionView& view) override {
    NodeId best = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.network().node_count(); ++v) {
      const double finish = view.earliest_finish(task, v);
      if (finish < best_finish) {
        best_finish = finish;
        best = v;
      }
    }
    return best;
  }
};

class RoundRobinPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "online-RR"; }
  void reset(const ProblemInstance&) override { next_ = 0; }
  [[nodiscard]] NodeId place(const RevealedTask&, const ExecutionView& view) override {
    const NodeId v = static_cast<NodeId>(next_ % view.network().node_count());
    ++next_;
    return v;
  }

 private:
  std::size_t next_ = 0;
};

class FastestPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "online-Fastest"; }
  [[nodiscard]] NodeId place(const RevealedTask&, const ExecutionView& view) override {
    return view.network().fastest_node();
  }
};

class LocalityPolicy final : public OnlinePolicy {
 public:
  explicit LocalityPolicy(double tolerance) : tolerance_(tolerance) {}
  [[nodiscard]] std::string_view name() const override { return "online-Locality"; }
  [[nodiscard]] NodeId place(const RevealedTask& task, const ExecutionView& view) override {
    // Home = the input node holding the largest share of input bytes;
    // fall back to the fastest node for source tasks.
    NodeId home = view.network().fastest_node();
    if (!task.input_home.empty()) {
      std::unordered_map<NodeId, double> bytes;
      double best_bytes = -1.0;
      for (const auto& [pred, node] : task.input_home) {
        (void)pred;
        bytes[node] += 1.0;  // weight by input count; sizes live in the graph
        if (bytes[node] > best_bytes) {
          best_bytes = bytes[node];
          home = node;
        }
      }
    }
    NodeId eft_best = 0;
    double eft_finish = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < view.network().node_count(); ++v) {
      const double finish = view.earliest_finish(task, v);
      if (finish < eft_finish) {
        eft_finish = finish;
        eft_best = v;
      }
    }
    const double home_finish = view.earliest_finish(task, home);
    return home_finish <= eft_finish * (1.0 + tolerance_) ? home : eft_best;
  }

 private:
  double tolerance_;
};

class RandomPolicy final : public OnlinePolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  [[nodiscard]] std::string_view name() const override { return "online-Random"; }
  void reset(const ProblemInstance&) override { rng_.reseed(seed_); }
  [[nodiscard]] NodeId place(const RevealedTask&, const ExecutionView& view) override {
    return static_cast<NodeId>(rng_.index(view.network().node_count()));
  }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace

OnlinePolicyPtr make_online_eft() { return std::make_unique<EftPolicy>(); }
OnlinePolicyPtr make_online_round_robin() { return std::make_unique<RoundRobinPolicy>(); }
OnlinePolicyPtr make_online_fastest() { return std::make_unique<FastestPolicy>(); }
OnlinePolicyPtr make_online_locality(double tolerance) {
  return std::make_unique<LocalityPolicy>(tolerance);
}
OnlinePolicyPtr make_online_random(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}

std::vector<std::string> online_policy_names() {
  return {"online-EFT", "online-RR", "online-Fastest", "online-Locality", "online-Random"};
}

OnlinePolicyPtr make_online_policy(const std::string& name, std::uint64_t seed) {
  if (name == "online-EFT") return make_online_eft();
  if (name == "online-RR") return make_online_round_robin();
  if (name == "online-Fastest") return make_online_fastest();
  if (name == "online-Locality") return make_online_locality();
  if (name == "online-Random") return make_online_random(seed);
  throw std::invalid_argument("unknown online policy: " + name);
}

Schedule simulate_online(const ProblemInstance& inst, OnlinePolicy& policy) {
  const auto& g = inst.graph;
  policy.reset(inst);

  TimelineBuilder builder(inst);
  std::vector<double> node_free(inst.network.node_count(), 0.0);
  std::vector<double> task_finish(g.task_count(), 0.0);
  std::vector<std::pair<TaskId, NodeId>> placements;

  // Reveal-on-ready loop: among ready (unplaced) tasks, the one whose
  // inputs all exist earliest is revealed next. Tasks are dispatched in
  // reveal order — the policy never sees two pending tasks at once, the
  // strictest online regime.
  while (!builder.complete()) {
    TaskId next = 0;
    double next_arrival = std::numeric_limits<double>::infinity();
    bool found = false;
    for (TaskId t = 0; t < g.task_count(); ++t) {
      if (!builder.ready(t)) continue;
      double arrival = 0.0;  // inputs exist once every producer finished
      for (TaskId p : g.predecessors(t)) {
        arrival = std::max(arrival, builder.assignment_of(p).finish);
      }
      if (!found || arrival < next_arrival || (arrival == next_arrival && t < next)) {
        next = t;
        next_arrival = arrival;
        found = true;
      }
    }

    RevealedTask revealed;
    revealed.task = next;
    revealed.cost = g.cost(next);
    revealed.arrival = next_arrival;
    for (TaskId p : g.predecessors(next)) {
      revealed.input_home.emplace_back(p, builder.assignment_of(p).node);
    }

    const ExecutionView view(inst, node_free, task_finish, placements);
    const NodeId chosen = policy.place(revealed, view);
    if (chosen >= inst.network.node_count()) {
      throw std::logic_error("online policy returned an invalid node");
    }
    builder.place_earliest(next, chosen, /*insertion=*/false);
    const auto& a = builder.assignment_of(next);
    node_free[chosen] = a.finish;
    task_finish[next] = a.finish;
    placements.emplace_back(next, chosen);
  }
  return builder.to_schedule();
}

}  // namespace saga::online
