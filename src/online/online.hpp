#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/problem_instance.hpp"
#include "sched/schedule.hpp"

/// \file online.hpp
/// Online scheduling — the paper's conclusion lists "online scheduling
/// (e.g., scheduling tasks as they arrive)" as future work; this module
/// implements it as a constrained-information simulation.
///
/// Model: the task graph is *not* known upfront. A task is revealed to the
/// policy only at the moment it becomes ready (all predecessors finished);
/// the policy sees the revealed task's cost, where its inputs live, the
/// network, and the current node timelines — but nothing about unrevealed
/// successors (so rank-based priorities are unavailable by construction).
/// The policy must immediately and irrevocably pick a node; the task then
/// starts as early as possible there. The resulting schedule is a valid
/// offline schedule, so it can be compared directly against HEFT & friends
/// to measure the price of not knowing the future.

namespace saga::online {

/// What a policy may see when a task is revealed. `arrival` is the
/// simulation time of the reveal (the earliest moment all inputs exist
/// somewhere); `input_home[i]` pairs each predecessor with the node its
/// output lives on.
struct RevealedTask {
  TaskId task = 0;
  double cost = 0.0;
  double arrival = 0.0;
  std::vector<std::pair<TaskId, NodeId>> input_home;
};

/// Read-only view of the execution state offered to policies.
class ExecutionView {
 public:
  ExecutionView(const ProblemInstance& inst, const std::vector<double>& node_free,
                const std::vector<double>& task_finish,
                const std::vector<std::pair<TaskId, NodeId>>& placements)
      : inst_(&inst), node_free_(&node_free), task_finish_(&task_finish),
        placements_(&placements) {}

  [[nodiscard]] const Network& network() const noexcept { return inst_->network; }

  /// Earliest time node v is free for new work.
  [[nodiscard]] double node_free(NodeId v) const { return (*node_free_)[v]; }

  /// Data-ready time of a revealed task on node v (transfer from each
  /// input's home node).
  [[nodiscard]] double data_ready(const RevealedTask& task, NodeId v) const;

  /// Earliest start / finish of the revealed task on v.
  [[nodiscard]] double earliest_start(const RevealedTask& task, NodeId v) const;
  [[nodiscard]] double earliest_finish(const RevealedTask& task, NodeId v) const;

 private:
  const ProblemInstance* inst_;
  const std::vector<double>* node_free_;
  const std::vector<double>* task_finish_;
  const std::vector<std::pair<TaskId, NodeId>>* placements_;
};

/// An online scheduling policy: must pick a node for every revealed task.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual NodeId place(const RevealedTask& task, const ExecutionView& view) = 0;
  /// Called once per instance before simulation (reset internal state).
  virtual void reset(const ProblemInstance& inst) { (void)inst; }
};

using OnlinePolicyPtr = std::unique_ptr<OnlinePolicy>;

/// Greedy earliest-finish-time: the online analogue of MCT.
[[nodiscard]] OnlinePolicyPtr make_online_eft();

/// Round-robin across nodes, ignoring all costs (online OLB cousin).
[[nodiscard]] OnlinePolicyPtr make_online_round_robin();

/// Always the fastest node (online FastestNode / MET).
[[nodiscard]] OnlinePolicyPtr make_online_fastest();

/// Sticky data-locality: the input-majority home node unless the EFT of
/// the earliest-free node beats it by more than `tolerance` (relative).
[[nodiscard]] OnlinePolicyPtr make_online_locality(double tolerance = 0.25);

/// Uniform random node (baseline), deterministic in seed.
[[nodiscard]] OnlinePolicyPtr make_online_random(std::uint64_t seed);

/// All built-in policies by name.
[[nodiscard]] std::vector<std::string> online_policy_names();
[[nodiscard]] OnlinePolicyPtr make_online_policy(const std::string& name, std::uint64_t seed = 1);

/// Runs the reveal-on-ready simulation and returns the realised schedule
/// (valid for the instance; compare makespans against offline schedulers).
[[nodiscard]] Schedule simulate_online(const ProblemInstance& inst, OnlinePolicy& policy);

}  // namespace saga::online
