#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

/// \file thread_pool.hpp
/// Fixed-size thread pool for the embarrassingly parallel experiment drivers
/// (pairwise PISA grids, dataset benchmarking sweeps). Determinism is
/// preserved by giving every work item its own derived RNG stream and an
/// output slot indexed by work-item id, so results are independent of
/// scheduling order.

namespace saga {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Drains the queue and joins all workers without destroying the pool
  /// object: after shutdown() returns, no worker thread exists, but
  /// accessors (thread_count, jobs_completed, queue_depth) remain valid.
  /// This lets an owner that hands out references to the pool (HttpServer)
  /// quiesce it *before* overwriting its owning pointer — the pointer write
  /// would otherwise race with in-flight workers reading it. Idempotent;
  /// not safe to call concurrently with itself, and must not be called
  /// from a worker (a thread cannot join itself).
  void shutdown();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Number of queued jobs the workers have picked up for execution (lane
  /// jobs spawned by parallel_for count as one each; the caller's own lane
  /// does not). Monotonic; lets tests and drivers observe that work
  /// actually reached the pool.
  ///
  /// Memory order: relaxed. An observer that synchronized with a job's
  /// completion (future.get(), parallel_for return, pool join) already has a
  /// happens-before edge to the worker's increment through that mechanism,
  /// so it reads an up-to-date count; an observer that did not synchronize
  /// is only entitled to a monotonic lower bound, which relaxed provides.
  [[nodiscard]] std::size_t jobs_completed() const noexcept {
    return jobs_completed_.load(std::memory_order_relaxed);
  }

  /// Jobs submitted but not yet picked up by a worker — the instantaneous
  /// backlog. Together with jobs_completed this is the service telemetry's
  /// queue-depth gauge; it is a momentary snapshot, not a synchronization
  /// point.
  ///
  /// Memory order: relaxed is sufficient (and the weakest correct order)
  /// because every write happens under mutex_ — the mutex serializes
  /// writers, and readers only ever treat the value as a statistical gauge,
  /// never as a proof that a particular job is or is not queued. No reader
  /// establishes happens-before through this atomic.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
    return fut;
  }

  /// Bounded-submit seam for backpressure (the `saga serve` daemon's
  /// accept loop): enqueues the callable only while fewer than `max_queue`
  /// jobs are waiting, so a producer that outruns the workers fails fast
  /// instead of growing the queue without bound. Returns the job's future
  /// on success, std::nullopt when the queue is full. The check and the
  /// enqueue happen under one lock, so concurrent try_submit calls never
  /// overshoot the bound (workers may drain the queue concurrently, which
  /// only ever makes room). `max_queue` must be > 0.
  template <typename F>
  auto try_submit(F&& fn, std::size_t max_queue)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (queue_.size() >= max_queue) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), distributing work across the pool and
  /// blocking until all iterations complete. Exceptions from iterations are
  /// rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::atomic<std::size_t> jobs_completed_{0};
  std::atomic<std::size_t> queue_depth_{0};  // == queue_.size(), maintained under mutex_
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Returns the globally shared pool, sized from the SAGA_THREADS environment
/// variable if set (see env.hpp), otherwise hardware concurrency.
[[nodiscard]] ThreadPool& global_pool();

}  // namespace saga
