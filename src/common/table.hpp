#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

/// \file table.hpp
/// ASCII table / heatmap rendering. The paper presents its results as
/// matplotlib heatmaps (Figs. 2, 4, 10-19); the bench binaries print the
/// same matrices as aligned text tables using the paper's cell-clamping
/// convention: values above 5 render as ">5.0" and values above 1000 as
/// ">1000" (see Fig. 4 caption and discussion in Section VI-A).

namespace saga {

/// Formats a heatmap cell the way the paper prints it.
///   clamp_lo: threshold above which the value prints as ">5.0" (default 5).
///   clamp_hi: threshold above which the value prints as ">1000".
[[nodiscard]] std::string format_ratio_cell(double value, double clamp_lo = 5.0,
                                            double clamp_hi = 1000.0);

/// A simple labelled matrix printer with right-aligned cells.
class Table {
 public:
  Table(std::string title, std::vector<std::string> column_labels);

  /// Appends a row; `cells.size()` must equal the number of columns.
  void add_row(std::string label, std::vector<std::string> cells);

  /// Renders the table with box-drawing-free ASCII alignment.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t rows() const noexcept { return row_labels_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return column_labels_.size(); }

 private:
  std::string title_;
  std::vector<std::string> column_labels_;
  std::vector<std::string> row_labels_;
  std::vector<std::vector<std::string>> cells_;
};

/// Fixed-point formatting helper ("%.2f").
[[nodiscard]] std::string format_fixed(double value, int digits = 2);

}  // namespace saga
