#include "common/version.hpp"

#include <atomic>

namespace saga {

VersionStamp next_version_stamp() noexcept {
  static std::atomic<VersionStamp> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace saga
