#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// \file hash.hpp
/// Stable content hashing for on-disk artifacts. The result store stamps
/// every cell record with a hash of the experiment's result-affecting fields
/// so that shards written on different machines (or at different times) can
/// only be merged when they describe the exact same computation. FNV-1a is
/// used for its stability and simplicity — this is a fingerprint, not a
/// cryptographic commitment.

namespace saga {

/// 64-bit FNV-1a over a byte string. Matches the offset basis / prime used
/// by datasets::dataset_name_hash (kept separate: that one is a pinned seed
/// derivation, this one a general-purpose fingerprint).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

/// Lowercase 16-character hexadecimal rendering of a 64-bit hash.
[[nodiscard]] inline std::string hash_hex(std::uint64_t hash) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xfULL];
    hash >>= 4;
  }
  return out;
}

}  // namespace saga
