#include "common/nearest.hpp"

#include <algorithm>
#include <cctype>

namespace saga {

namespace {

char lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }

}  // namespace

std::size_t edit_distance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Two-row dynamic program.
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t subst = prev[j - 1] + (lower(a[i - 1]) == lower(b[j - 1]) ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string nearest_match(std::string_view query,
                          const std::vector<std::string>& candidates) {
  const std::size_t budget = std::max<std::size_t>(2, query.size() / 2);
  std::size_t best = budget + 1;
  std::string winner;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(query, candidate);
    if (d < best) {
      best = d;
      winner = candidate;
    }
  }
  return winner;
}

std::string did_you_mean(std::string_view query, const std::vector<std::string>& candidates) {
  const std::string nearest = nearest_match(query, candidates);
  if (nearest.empty()) return {};
  return " (did you mean '" + nearest + "'?)";
}

std::string join(const std::vector<std::string>& items, const char* separator) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += separator;
    out += item;
  }
  return out;
}

}  // namespace saga
