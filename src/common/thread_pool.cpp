#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/env.hpp"

namespace saga {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    // Counted before running: a future obtained from this job is only
    // satisfied inside job(), so observers that waited on it are guaranteed
    // to see the incremented count.
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling via a shared counter: work items are heterogeneous
  // (different schedulers / instance sizes), so static chunking would leave
  // threads idle.
  //
  // Memory order: both atomics are relaxed. `next` only needs the
  // atomicity of fetch_add — each index is claimed exactly once, and the
  // results a lane produces are published to the caller through its
  // future's release/acquire pair, not through `next`. `failed` is a
  // best-effort early-exit hint; the exception itself travels under
  // error_mutex and is rethrown only after every future has been joined.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t lanes = std::min(n, thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  auto lane = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  for (std::size_t t = 0; t + 1 < lanes; ++t) futures.push_back(submit(lane));
  lane();  // caller participates, so parallel_for works on a 1-thread pool
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool(env_threads());
  return pool;
}

}  // namespace saga
