#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace saga {

std::uint64_t derive_seed(std::uint64_t master,
                          std::initializer_list<std::uint64_t> coords) noexcept {
  std::uint64_t state = master ^ 0xa0761d6478bd642fULL;
  std::uint64_t acc = splitmix64(state);
  for (std::uint64_t c : coords) {
    state ^= c + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
    acc ^= splitmix64(state);
  }
  return acc;
}

double Rng::uniform() {
  // 53-bit mantissa from two 32-bit draws.
  const std::uint64_t hi = engine_();
  const std::uint64_t lo = engine_();
  const std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(engine_()) << 32) | engine_());
  }
  // Lemire-style bounded draw on 64 bits of input, mapped uniformly with a
  // 128-bit multiply (the bias of draw*span>>64 is < 2^-64 per bucket).
  __extension__ using u128 = unsigned __int128;
  const std::uint64_t draw = (static_cast<std::uint64_t>(engine_()) << 32) | engine_();
  const u128 wide = static_cast<u128>(draw) * span;
  return lo + static_cast<std::int64_t>(static_cast<std::uint64_t>(wide >> 64));
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

double Rng::clipped_gaussian(double mean, double stddev, double lo, double hi) {
  const double x = gaussian(mean, stddev);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating point slack: fall back to the last positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace saga
