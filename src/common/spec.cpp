#include "common/spec.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace saga {

namespace {

[[noreturn]] void grammar_error(std::string_view text, std::string_view kind,
                                const std::string& what) {
  throw std::invalid_argument("bad " + std::string(kind) + " spec '" + std::string(text) +
                              "': " + what);
}

}  // namespace

std::string Spec::to_string() const {
  std::string out = name;
  char separator = '?';
  for (const auto& [key, value] : params) {
    out += separator;
    out += key;
    out += '=';
    out += value;
    separator = '&';
  }
  return out;
}

const std::string* Spec::find(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

Spec parse_spec(std::string_view text, std::string_view kind) {
  Spec spec;
  const std::size_t question = text.find('?');
  const std::string_view name = text.substr(0, question);
  if (name.empty()) grammar_error(text, kind, "empty " + std::string(kind) + " name");
  if (name.find_first_of("&=") != std::string_view::npos) {
    grammar_error(text, kind,
                  std::string(kind) + " name may not contain '&' or '=' (missing '?'?)");
  }
  spec.name.assign(name);
  if (question == std::string_view::npos) return spec;

  std::string_view rest = text.substr(question + 1);
  if (rest.empty()) grammar_error(text, kind, "'?' must be followed by key=value parameters");
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view param = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{} : rest.substr(amp + 1);
    const std::size_t eq = param.find('=');
    if (eq == std::string_view::npos) {
      grammar_error(text, kind, "parameter '" + std::string(param) + "' is missing '=value'");
    }
    const std::string key(param.substr(0, eq));
    const std::string value(param.substr(eq + 1));
    if (key.empty()) grammar_error(text, kind, "empty parameter key");
    if (value.empty()) grammar_error(text, kind, "parameter '" + key + "' has an empty value");
    if (spec.find(key) != nullptr) grammar_error(text, kind, "duplicate parameter '" + key + "'");
    spec.params.emplace_back(key, value);
    if (rest.empty() && amp != std::string_view::npos) {
      grammar_error(text, kind, "trailing '&'");
    }
  }
  return spec;
}

SpecParams::SpecParams(std::string kind, std::string owner,
                       const std::vector<std::pair<std::string, std::string>>* params)
    : kind_(std::move(kind)), owner_(std::move(owner)), params_(params) {}

const std::string* SpecParams::raw(std::string_view key) const {
  if (params_ == nullptr) return nullptr;
  for (const auto& [k, v] : *params_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool SpecParams::has(std::string_view key) const { return raw(key) != nullptr; }

void SpecParams::fail(std::string_view key, std::string_view expected,
                      const std::string& got) const {
  throw std::invalid_argument(kind_ + " '" + owner_ + "' parameter '" + std::string(key) +
                              "': expected " + std::string(expected) + ", got '" + got + "'");
}

std::uint64_t SpecParams::get_u64(std::string_view key, std::uint64_t fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t parsed = std::strtoull(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0' || errno == ERANGE || value->front() == '-') {
    fail(key, "an unsigned integer", *value);
  }
  return parsed;
}

std::size_t SpecParams::get_size(std::string_view key, std::size_t fallback) const {
  return static_cast<std::size_t>(get_u64(key, fallback));
}

std::int64_t SpecParams::get_i64(std::string_view key, std::int64_t fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const std::int64_t parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0' || errno == ERANGE) {
    fail(key, "an integer", *value);
  }
  return parsed;
}

double SpecParams::get_double(std::string_view key, double fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0' || errno == ERANGE) {
    fail(key, "a number", *value);
  }
  return parsed;
}

bool SpecParams::get_bool(std::string_view key, bool fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (*value == "true" || *value == "1") return true;
  if (*value == "false" || *value == "0") return false;
  fail(key, "true|false", *value);
}

std::string SpecParams::get_string(std::string_view key, std::string_view fallback) const {
  const std::string* value = raw(key);
  return value == nullptr ? std::string(fallback) : *value;
}

std::vector<std::string> SpecParams::get_list(std::string_view key,
                                              std::vector<std::string> fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  std::vector<std::string> out;
  std::string_view rest = *value;
  while (true) {
    const std::size_t plus = rest.find('+');
    const std::string_view element = rest.substr(0, plus);
    if (element.empty()) fail(key, "a non-empty '+'-separated list", *value);
    out.emplace_back(element);
    if (plus == std::string_view::npos) break;
    rest = rest.substr(plus + 1);
    if (rest.empty()) fail(key, "a non-empty '+'-separated list", *value);
  }
  return out;
}

}  // namespace saga
