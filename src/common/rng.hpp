#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// Every stochastic component in this library (dataset generators, the WBA
/// scheduler, the PISA annealer, experiment drivers) draws from an `Rng`
/// seeded through `derive_seed`, so results are bit-reproducible for a given
/// master seed regardless of thread count or evaluation order.

namespace saga {

/// SplitMix64 step: used both as a seed-mixing function and to bootstrap
/// the PCG32 state. Reference: Steele, Lea & Flood (2014).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from a master seed and a sequence of
/// integer coordinates (e.g. {dataset index, instance index}). Two distinct
/// coordinate vectors yield (with overwhelming probability) unrelated streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::initializer_list<std::uint64_t> coords) noexcept;

/// PCG32 (O'Neill 2014): small, fast, statistically solid generator.
/// Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL) {}
  constexpr explicit Pcg32(std::uint64_t seed) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    state_ = splitmix64(sm);
    inc_ = splitmix64(sm) | 1ULL;  // stream selector must be odd
    (*this)();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// Convenience wrapper bundling a PCG32 engine with the distributions this
/// project needs. Distributions are hand-rolled (not <random>) so results
/// are identical across standard library implementations.
class Rng {
 public:
  Rng() = default;
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  void reseed(std::uint64_t seed) { engine_.reseed(seed); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Standard normal via Box-Muller (caches the second deviate).
  [[nodiscard]] double gaussian();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev);

  /// Clipped Gaussian as used throughout the paper: a normal sample clamped
  /// into [lo, hi]. (The paper's dataset generators all use this shape.)
  [[nodiscard]] double clipped_gaussian(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// choice is uniform.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[index(i + 1)]);
    }
  }

  /// Direct access for use with standard algorithms.
  [[nodiscard]] Pcg32& engine() noexcept { return engine_; }

 private:
  Pcg32 engine_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace saga
