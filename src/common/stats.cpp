#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace saga {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return std::sqrt(accum / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  return s;
}

std::string to_string(const Summary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f",
                s.count, s.min, s.q1, s.median, s.q3, s.max, s.mean);
  return buf;
}

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("FixedHistogram needs at least one bucket");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("FixedHistogram bounds must be strictly increasing");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

FixedHistogram FixedHistogram::latency_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    for (double step : {1.0, 2.0, 5.0}) {
      if (decade * step > 1e7) break;
      bounds.push_back(decade * step);
    }
  }
  bounds.push_back(1e7);  // 10 s
  return FixedHistogram(std::move(bounds));
}

void FixedHistogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());  // == size(): overflow
  // Memory order: relaxed everywhere. Each of the three cells (bucket,
  // count_, sum_) is individually exact because every write is an atomic
  // RMW; the cells are deliberately NOT updated as one transaction — a
  // concurrent reader may see count_ ahead of the bucket counts or sum_
  // behind both. percentile()/counts() are documented snapshots and rank
  // against the bucket array alone, so no reader needs a happens-before
  // edge through any of these.
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs C++20 library support GCC ships only
  // for integral types on some targets; a CAS loop is portable. The CAS
  // needs no ordering either: success only has to publish the new sum
  // atomically, not any other memory.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value, std::memory_order_relaxed)) {
  }
}

std::uint64_t FixedHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double FixedHistogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

double FixedHistogram::percentile(double p) const noexcept {
  // Rank against a snapshot of the bucket counts (not count_, which can be
  // momentarily ahead of the bucket a concurrent writer is about to bump).
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  if (total == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  const double rank = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= rank) return bounds_[i];
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<std::uint64_t> FixedHistogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace saga
