#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace saga {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - m) * (x - m);
  return std::sqrt(accum / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::vector<double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  return s;
}

std::string to_string(const Summary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f",
                s.count, s.min, s.q1, s.median, s.q3, s.max, s.mean);
  return buf;
}

}  // namespace saga
