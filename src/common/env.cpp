#include "common/env.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

namespace saga {

namespace {

// getenv is read-only here and every call site runs before any worker thread
// starts (knob snapshots at startup); nothing in the process calls setenv, so
// the POSIX getenv/setenv race concurrency-mt-unsafe guards against cannot
// occur.
double read_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::uint64_t read_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

}  // namespace

double env_scale() {
  const double s = read_double("SAGA_SCALE", 0.25);
  return std::clamp(s, 0.001, 100.0);
}

std::uint64_t env_seed() { return read_u64("SAGA_SEED", 42); }

std::size_t env_threads() {
  return static_cast<std::size_t>(read_u64("SAGA_THREADS", 0));
}

std::size_t scaled_count(std::size_t paper_count, std::size_t floor_) {
  const double scaled = std::round(static_cast<double>(paper_count) * env_scale());
  const auto n = static_cast<std::size_t>(std::max(scaled, 1.0));
  return std::max(n, std::min(floor_, paper_count));
}

}  // namespace saga
