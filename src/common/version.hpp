#pragma once

#include <cstdint>

/// \file version.hpp
/// Process-wide monotone version stamps. Mutable graph/network containers
/// stamp themselves on every mutation; caches (InstanceView) compare stamps
/// to decide between a no-op, a weight refresh, and a structural rebuild.
/// Stamps are globally unique across objects, so a stamp match is safe even
/// after instances are copied or assigned over; moved-from containers
/// re-stamp themselves so a cache can never match their gutted state.

namespace saga {

using VersionStamp = std::uint64_t;

/// Returns a fresh stamp, strictly greater than every stamp handed out
/// before (thread-safe).
[[nodiscard]] VersionStamp next_version_stamp() noexcept;

}  // namespace saga
