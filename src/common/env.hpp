#pragma once

#include <cstddef>
#include <cstdint>

/// \file env.hpp
/// Environment-variable knobs shared by the benchmark harness:
///   SAGA_SCALE   - multiplier on experiment sizes (instances, SA restarts);
///                  1.0 reproduces the paper's settings, default is smaller
///                  so `for b in build/bench/*; do $b; done` finishes fast.
///   SAGA_SEED    - master seed (default 42).
///   SAGA_THREADS - worker threads for the experiment drivers (default: all).

namespace saga {

/// Experiment scale factor; clamped to [0.001, 100]. Default 0.25.
[[nodiscard]] double env_scale();

/// Master seed for all experiment RNG streams. Default 42.
[[nodiscard]] std::uint64_t env_seed();

/// Thread count for the global pool; 0 means hardware concurrency.
[[nodiscard]] std::size_t env_threads();

/// Scales a paper-fidelity count by env_scale(), keeping at least `floor_`.
[[nodiscard]] std::size_t scaled_count(std::size_t paper_count, std::size_t floor_ = 4);

}  // namespace saga
