#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace saga {

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_ratio_cell(double value, double clamp_lo, double clamp_hi) {
  if (std::isnan(value)) return "-";
  if (std::isinf(value) || value > clamp_hi) return ">1000";
  if (value > clamp_lo) return ">5.0";
  return format_fixed(value, 2);
}

Table::Table(std::string title, std::vector<std::string> column_labels)
    : title_(std::move(title)), column_labels_(std::move(column_labels)) {}

void Table::add_row(std::string label, std::vector<std::string> cells) {
  assert(cells.size() == column_labels_.size());
  row_labels_.push_back(std::move(label));
  cells_.push_back(std::move(cells));
}

std::string Table::render() const {
  // Column widths: label column plus one per data column.
  std::size_t label_width = 0;
  for (const auto& l : row_labels_) label_width = std::max(label_width, l.size());
  std::vector<std::size_t> widths(column_labels_.size());
  for (std::size_t c = 0; c < column_labels_.size(); ++c) {
    widths[c] = column_labels_[c].size();
    for (const auto& row : cells_) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  out << std::string(label_width, ' ');
  for (std::size_t c = 0; c < column_labels_.size(); ++c) {
    out << "  " << std::string(widths[c] - column_labels_[c].size(), ' ') << column_labels_[c];
  }
  out << '\n';
  for (std::size_t r = 0; r < row_labels_.size(); ++r) {
    out << row_labels_[r] << std::string(label_width - row_labels_[r].size(), ' ');
    for (std::size_t c = 0; c < column_labels_.size(); ++c) {
      out << "  " << std::string(widths[c] - cells_[r][c].size(), ' ') << cells_[r][c];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace saga
