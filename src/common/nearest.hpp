#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file nearest.hpp
/// Nearest-name lookup for error ergonomics: when a user misspells a
/// scheduler, dataset, parameter or spec key, the thrown message suggests
/// the closest known name ("did you mean `heft`?").

namespace saga {

/// Case-insensitive Levenshtein edit distance.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `query` by case-insensitive edit distance, or
/// an empty string when nothing is plausibly close (distance greater than
/// max(2, |query| / 2)). Ties resolve to the earliest candidate.
[[nodiscard]] std::string nearest_match(std::string_view query,
                                        const std::vector<std::string>& candidates);

/// Renders "did you mean 'X'?" when a near match exists, else "".
[[nodiscard]] std::string did_you_mean(std::string_view query,
                                       const std::vector<std::string>& candidates);

/// Joins names with a separator — the other half of every "valid X: a, b,
/// c" diagnostic this header serves.
[[nodiscard]] std::string join(const std::vector<std::string>& items, const char* separator);

}  // namespace saga
