#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file spec.hpp (common)
/// The registry spec-string grammar shared by schedulers (sched/registry.hpp)
/// and datasets (datasets/registry.hpp):
///
///   spec   := name [ '?' param ( '&' param )* ]
///   param  := key '=' value
///   value  := any characters except '&' ('+' separates list elements)
///
/// Examples: `HEFT`, `ga?pop=64&gens=200`, `montage?n=200&ccr=0.5`,
/// `erdos?n=64&p=0.1&hetero=2.0`, `ensemble?members=heft+cpop+minmin`.
/// Names resolve case-insensitively against the owning registry; parameter
/// keys are validated against the entry's declared descriptor, and every
/// entry also accepts the universal `seed` key. `parse` / `to_string`
/// round-trip exactly.

namespace saga {

/// One declared spec parameter of a registry entry (scheduler or dataset).
struct ParamDesc {
  std::string key;
  std::string summary;  // human help: type, accepted values, default, range
};

/// A parsed spec string: entry name plus key=value parameters in the order
/// they were written.
struct Spec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Serializes back to the grammar above; `parse_spec(s, kind).to_string()
  /// == s` for any valid spec string `s`.
  [[nodiscard]] std::string to_string() const;

  /// The value for `key`, or null when absent.
  [[nodiscard]] const std::string* find(std::string_view key) const;
};

/// Parses a spec string; throws std::invalid_argument on grammar errors
/// (empty name, missing '=', empty or duplicate keys — the message names
/// the offending key). `kind` ("scheduler", "dataset") only flavours the
/// error messages. Does not consult any registry: unknown names and
/// parameter keys are diagnosed at construction time.
[[nodiscard]] Spec parse_spec(std::string_view text, std::string_view kind);

/// Typed, validated access to a spec's parameters, handed to registry
/// factories. Conversion failures throw std::invalid_argument naming the
/// owning entry (`<kind> '<owner>'`) and the offending key.
class SpecParams {
 public:
  SpecParams(std::string kind, std::string owner,
             const std::vector<std::pair<std::string, std::string>>* params);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] std::size_t get_size(std::string_view key, std::size_t fallback) const;
  [[nodiscard]] std::int64_t get_i64(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;
  /// '+'-separated list, e.g. `members=heft+cpop+minmin`.
  [[nodiscard]] std::vector<std::string> get_list(std::string_view key,
                                                  std::vector<std::string> fallback) const;

 private:
  [[nodiscard]] const std::string* raw(std::string_view key) const;
  [[noreturn]] void fail(std::string_view key, std::string_view expected,
                         const std::string& got) const;

  std::string kind_;
  std::string owner_;
  const std::vector<std::pair<std::string, std::string>>* params_;
};

}  // namespace saga
