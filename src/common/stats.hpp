#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the benchmarking drivers and
/// the experiment harness (e.g. the box-plot style summaries behind the
/// paper's Fig. 7/8 makespan distributions and the Fig. 2 gradients), plus
/// the fixed-bucket histogram shared by the service telemetry
/// (serve/telemetry) and bench_serve.

namespace saga {

/// Five-number summary plus mean of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

[[nodiscard]] double mean(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Linear-interpolation quantile (same convention as numpy's default).
/// `q` must be in [0, 1]; `xs` must be non-empty.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Computes the full summary in one pass over a copy of the data.
[[nodiscard]] Summary summarize(std::vector<double> xs);

/// Renders a summary as a compact single-line string, e.g.
/// "n=1000 min=1.00 q1=1.20 med=1.50 q3=2.10 max=5.30 mean=1.71".
[[nodiscard]] std::string to_string(const Summary& s);

/// Fixed-bucket histogram with atomic counters: record() is lock-free and
/// wait-free on platforms with native 64-bit atomics, so concurrent request
/// handlers can stamp latencies without coordination. Buckets are defined by
/// their inclusive upper bounds (sorted, strictly increasing); values above
/// the last bound land in an implicit +inf overflow bucket. Percentile
/// extraction returns the upper bound of the bucket where the cumulative
/// count crosses the rank (the Prometheus histogram_quantile convention,
/// without interpolation — deterministic and monotone).
class FixedHistogram {
 public:
  /// `upper_bounds` must be non-empty, sorted, strictly increasing.
  explicit FixedHistogram(std::vector<double> upper_bounds);

  /// The bucket ladder used by the serve telemetry: a 1-2-5 decade ladder
  /// from 1 µs to 10 s (values in microseconds), 22 buckets + overflow.
  [[nodiscard]] static FixedHistogram latency_us();

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;

  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]);
  /// +inf when it lands in the overflow bucket, 0 when the histogram is
  /// empty. percentile(0.5) / (0.9) / (0.99) are the p50/p90/p99 the
  /// telemetry and bench_serve report.
  [[nodiscard]] double percentile(double p) const noexcept;

  /// Bucket upper bounds (without the implicit +inf overflow bucket).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Snapshot of per-bucket counts; one extra trailing entry holds the
  /// overflow bucket. Taken with relaxed loads: individually exact,
  /// collectively approximate under concurrent writes.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace saga
