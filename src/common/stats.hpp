#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the benchmarking drivers and
/// the experiment harness (e.g. the box-plot style summaries behind the
/// paper's Fig. 7/8 makespan distributions and the Fig. 2 gradients).

namespace saga {

/// Five-number summary plus mean of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

[[nodiscard]] double mean(const std::vector<double>& xs);
[[nodiscard]] double stddev(const std::vector<double>& xs);

/// Linear-interpolation quantile (same convention as numpy's default).
/// `q` must be in [0, 1]; `xs` must be non-empty.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Computes the full summary in one pass over a copy of the data.
[[nodiscard]] Summary summarize(std::vector<double> xs);

/// Renders a summary as a compact single-line string, e.g.
/// "n=1000 min=1.00 q1=1.20 med=1.50 q3=2.10 max=5.30 mean=1.71".
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace saga
