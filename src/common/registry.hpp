#pragma once

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/nearest.hpp"

/// \file registry.hpp (common)
/// Shared mechanics of the descriptor registries (sched/registry.hpp,
/// datasets/registry.hpp): name/alias storage with collision checking,
/// exact-then-case-insensitive lookup, nearest-name suggestions, and tag
/// enumeration. `Desc` must expose `name` (string), `aliases`
/// (vector<string>), `tags` (vector<string>), and a truthy `factory`;
/// the derived registry supplies the user-facing kind ("scheduler",
/// "dataset") and the CLI hint printed with unknown-name errors.

namespace saga {

inline bool registry_iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

template <typename Desc>
class DescriptorRegistry {
 public:
  /// Registers a descriptor; throws std::invalid_argument on a missing
  /// name/factory or a name/alias collision. Not safe against concurrent
  /// lookups — register at startup.
  void add(Desc desc) {
    if (desc.name.empty()) throw std::invalid_argument(kind_ + " descriptor has no name");
    if (!desc.factory) {
      throw std::invalid_argument(kind_ + " '" + desc.name + "' descriptor has no factory");
    }
    auto check_collision = [this](const std::string& candidate) {
      for (const auto& existing : descs_) {
        if (registry_iequals(existing.name, candidate)) {
          throw std::invalid_argument(kind_ + " name '" + candidate +
                                      "' collides with registered '" + existing.name + "'");
        }
        for (const auto& alias : existing.aliases) {
          if (registry_iequals(alias, candidate)) {
            throw std::invalid_argument(kind_ + " name '" + candidate +
                                        "' collides with alias '" + alias + "' of '" +
                                        existing.name + "'");
          }
        }
      }
    };
    check_collision(desc.name);
    for (const auto& alias : desc.aliases) check_collision(alias);
    descs_.push_back(std::move(desc));
  }

  /// Looks up a descriptor by name or alias (exact match first, then
  /// case-insensitive); null when unknown.
  [[nodiscard]] const Desc* find(std::string_view name) const {
    for (const auto& desc : descs_) {
      if (desc.name == name) return &desc;
    }
    for (const auto& desc : descs_) {
      if (registry_iequals(desc.name, name)) return &desc;
      for (const auto& alias : desc.aliases) {
        if (registry_iequals(alias, name)) return &desc;
      }
    }
    return nullptr;
  }

  /// Like find(), but throws std::invalid_argument with a nearest-name
  /// suggestion and the list of valid tags for unknown names.
  [[nodiscard]] const Desc& resolve(std::string_view name) const {
    if (const Desc* desc = find(name)) return *desc;
    std::vector<std::string> candidates;
    for (const auto& desc : descs_) {
      candidates.push_back(desc.name);
      candidates.insert(candidates.end(), desc.aliases.begin(), desc.aliases.end());
    }
    throw std::invalid_argument("unknown " + kind_ + " '" + std::string(name) + "'" +
                                did_you_mean(name, candidates) +
                                "; valid tags: " + join(tags(), ", ") + " (see `" +
                                list_hint_ + "`)");
  }

  /// Canonical names carrying `tag` (all names when `tag` is empty), in
  /// registration order. Returns an empty vector for an unknown tag.
  [[nodiscard]] std::vector<std::string> names(std::string_view tag = {}) const {
    std::vector<std::string> out;
    for (const auto& desc : descs_) {
      if (tag.empty() || desc.has_tag(tag)) out.push_back(desc.name);
    }
    return out;
  }

  /// All registered descriptors, in registration order.
  [[nodiscard]] const std::vector<Desc>& descriptors() const noexcept { return descs_; }

  /// Sorted union of every descriptor's tags.
  [[nodiscard]] std::vector<std::string> tags() const {
    std::vector<std::string> out;
    for (const auto& desc : descs_) {
      for (const auto& tag : desc.tags) {
        if (std::find(out.begin(), out.end(), tag) == out.end()) out.push_back(tag);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 protected:
  DescriptorRegistry(std::string kind, std::string list_hint)
      : kind_(std::move(kind)), list_hint_(std::move(list_hint)) {}

  std::string kind_;
  std::string list_hint_;
  std::vector<Desc> descs_;
};

}  // namespace saga
