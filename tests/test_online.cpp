#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "online/online.hpp"
#include "sched/registry.hpp"

namespace saga::online {
namespace {

class OnlinePolicyValidity : public ::testing::TestWithParam<std::string> {};

TEST_P(OnlinePolicyValidity, ProducesValidSchedules) {
  const auto policy = make_online_policy(GetParam(), 3);
  for (const char* dataset : {"chains", "blast", "montage"}) {
    const auto inst = datasets::generate_instance(dataset, 5, 0);
    const Schedule s = simulate_online(inst, *policy);
    const auto result = s.validate(inst);
    EXPECT_TRUE(result.ok) << GetParam() << " on " << dataset << ": " << result.message;
  }
}

TEST_P(OnlinePolicyValidity, ValidOnPisaInstances) {
  const auto policy = make_online_policy(GetParam(), 3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    EXPECT_TRUE(simulate_online(inst, *policy).validate(inst).ok) << GetParam();
  }
}

TEST_P(OnlinePolicyValidity, DeterministicAcrossRuns) {
  const auto inst = datasets::generate_instance("chains", 7, 1);
  const auto p1 = make_online_policy(GetParam(), 9);
  const auto p2 = make_online_policy(GetParam(), 9);
  const Schedule a = simulate_online(inst, *p1);
  const Schedule b = simulate_online(inst, *p2);
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(a.of_task(t).node, b.of_task(t).node);
  }
}

TEST_P(OnlinePolicyValidity, PolicyIsReusableAcrossInstances) {
  // reset() must clear per-instance state (round-robin cursor, RNG).
  const auto policy = make_online_policy(GetParam(), 4);
  const auto inst = datasets::generate_instance("chains", 2, 0);
  const Schedule first = simulate_online(inst, *policy);
  (void)simulate_online(datasets::generate_instance("chains", 2, 1), *policy);
  const Schedule again = simulate_online(inst, *policy);
  EXPECT_DOUBLE_EQ(first.makespan(), again.makespan());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, OnlinePolicyValidity,
                         ::testing::ValuesIn(online_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(OnlineRegistry, UnknownPolicyThrows) {
  EXPECT_THROW((void)make_online_policy("nope"), std::invalid_argument);
}

TEST(OnlineEft, NeverBeatenByOnlineRandomOnAverage) {
  double eft_total = 0.0, random_total = 0.0;
  const auto eft = make_online_eft();
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto inst = datasets::generate_instance("chains", seed, 0);
    eft_total += simulate_online(inst, *eft).makespan();
    auto random = make_online_random(seed);
    random_total += simulate_online(inst, *random).makespan();
  }
  EXPECT_LE(eft_total, random_total);
}

TEST(OnlineFastest, MatchesOfflineFastestNode) {
  // Placing every revealed task on the fastest node serialises the graph
  // exactly as the offline FastestNode scheduler does.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const auto policy = make_online_fastest();
    EXPECT_DOUBLE_EQ(simulate_online(inst, *policy).makespan(),
                     make_scheduler("FastestNode")->schedule(inst).makespan());
  }
}

TEST(OnlineEft, PriceOfNoLookaheadIsBounded) {
  // Online EFT cannot use ranks, but on chains there is nothing to rank:
  // it should match offline MCT exactly (same greedy rule, same dispatch
  // order on a chain).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    ProblemInstance inst;
    Rng rng(seed);
    TaskId prev = inst.graph.add_task(rng.uniform(0.5, 1.5));
    for (int i = 0; i < 5; ++i) {
      const TaskId cur = inst.graph.add_task(rng.uniform(0.5, 1.5));
      inst.graph.add_dependency(prev, cur, rng.uniform(0.1, 1.0));
      prev = cur;
    }
    inst.network = Network(3);
    inst.network.set_speed(1, 2.0);
    const auto policy = make_online_eft();
    EXPECT_DOUBLE_EQ(simulate_online(inst, *policy).makespan(),
                     make_scheduler("MCT")->schedule(inst).makespan());
  }
}

TEST(OnlineLocality, SticksToInputHomeWhenCommIsExpensive) {
  // Huge data, weak links: the locality policy keeps the consumer where
  // its input lives even though another node is nominally faster.
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 1.0);
  inst.graph.add_dependency(a, b, 100.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 1.1);  // marginally faster elsewhere
  inst.network.set_strength(0, 1, 0.01);
  const auto policy = make_online_locality();
  const Schedule s = simulate_online(inst, *policy);
  EXPECT_EQ(s.of_task(b).node, s.of_task(a).node);
}

TEST(SimulateOnline, RevealsInArrivalOrder) {
  // A later-arriving task must not be dispatched before an earlier one:
  // with round-robin on a 2-node network the first two reveals (source,
  // then its first-finishing successor) take nodes 0 and 1 in order.
  ProblemInstance inst;
  const TaskId src = inst.graph.add_task("src", 1.0);
  const TaskId fast = inst.graph.add_task("fast", 0.1);
  const TaskId slow = inst.graph.add_task("slow", 5.0);
  inst.graph.add_dependency(src, fast, 0.0);
  inst.graph.add_dependency(src, slow, 0.0);
  inst.network = Network(2);
  const auto policy = make_online_round_robin();
  const Schedule s = simulate_online(inst, *policy);
  EXPECT_EQ(s.of_task(src).node, 0u);
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(OnlineVsOffline, LookaheadHasMeasurableValue) {
  // Across a dataset, offline HEFT should beat online EFT on average —
  // quantifying the price of online-ness.
  double online_total = 0.0, offline_total = 0.0;
  const auto policy = make_online_eft();
  const auto heft = make_scheduler("HEFT");
  for (std::size_t i = 0; i < 30; ++i) {
    const auto inst = datasets::generate_instance("montage", 11, i % 4);
    online_total += simulate_online(inst, *policy).makespan();
    offline_total += heft->schedule(inst).makespan();
  }
  EXPECT_GE(online_total, offline_total * 0.99);
}

}  // namespace
}  // namespace saga::online
