#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/task_graph.hpp"

namespace saga {
namespace {

TaskGraph diamond() {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1.0);
  const TaskId b = g.add_task("b", 2.0);
  const TaskId c = g.add_task("c", 3.0);
  const TaskId d = g.add_task("d", 4.0);
  g.add_dependency(a, b, 0.1);
  g.add_dependency(a, c, 0.2);
  g.add_dependency(b, d, 0.3);
  g.add_dependency(c, d, 0.4);
  return g;
}

TEST(TaskGraph, StartsEmpty) {
  TaskGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.task_count(), 0u);
  EXPECT_EQ(g.dependency_count(), 0u);
}

TEST(TaskGraph, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task("x", 1.0), 0u);
  EXPECT_EQ(g.add_task("y", 1.0), 1u);
  EXPECT_EQ(g.add_task(2.0), 2u);
  EXPECT_EQ(g.name(2), "t2");
}

TEST(TaskGraph, RejectsNegativeCosts) {
  TaskGraph g;
  EXPECT_THROW(g.add_task("bad", -1.0), std::invalid_argument);
  const TaskId t = g.add_task("ok", 1.0);
  EXPECT_THROW(g.set_cost(t, -0.5), std::invalid_argument);
}

TEST(TaskGraph, ZeroCostTasksAllowed) {
  TaskGraph g;
  const TaskId t = g.add_task("free", 0.0);
  EXPECT_EQ(g.cost(t), 0.0);
}

TEST(TaskGraph, SetCostUpdates) {
  TaskGraph g = diamond();
  g.set_cost(1, 9.0);
  EXPECT_EQ(g.cost(1), 9.0);
}

TEST(TaskGraph, DependencyAccessors) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.has_dependency(0, 1));
  EXPECT_FALSE(g.has_dependency(1, 0));
  EXPECT_DOUBLE_EQ(g.dependency_cost(2, 3), 0.4);
  EXPECT_THROW((void)g.dependency_cost(1, 2), std::out_of_range);
}

TEST(TaskGraph, SetDependencyCost) {
  TaskGraph g = diamond();
  g.set_dependency_cost(0, 1, 7.5);
  EXPECT_DOUBLE_EQ(g.dependency_cost(0, 1), 7.5);
  EXPECT_THROW(g.set_dependency_cost(1, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.set_dependency_cost(0, 1, -1.0), std::invalid_argument);
}

TEST(TaskGraph, AddDependencyRefusesDuplicates) {
  TaskGraph g = diamond();
  EXPECT_FALSE(g.add_dependency(0, 1, 0.9));
  EXPECT_DOUBLE_EQ(g.dependency_cost(0, 1), 0.1);  // unchanged
}

TEST(TaskGraph, AddDependencyRefusesSelfLoop) {
  TaskGraph g = diamond();
  EXPECT_FALSE(g.add_dependency(2, 2, 1.0));
}

TEST(TaskGraph, AddDependencyRefusesCycles) {
  TaskGraph g = diamond();
  EXPECT_FALSE(g.add_dependency(3, 0, 1.0));  // closes a->...->d->a
  EXPECT_FALSE(g.add_dependency(3, 1, 1.0));  // closes b->d->b
  EXPECT_EQ(g.dependency_count(), 4u);
}

TEST(TaskGraph, AddDependencyOutOfRangeThrows) {
  TaskGraph g = diamond();
  EXPECT_THROW(g.add_dependency(0, 99, 1.0), std::out_of_range);
}

TEST(TaskGraph, TransitiveEdgeIsNotACycle) {
  TaskGraph g = diamond();
  EXPECT_TRUE(g.add_dependency(0, 3, 1.0));  // a->d shortcut is fine
}

TEST(TaskGraph, WouldCreateCycleProbes) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.would_create_cycle(3, 0));
  EXPECT_TRUE(g.would_create_cycle(1, 1));
  EXPECT_FALSE(g.would_create_cycle(1, 2));
}

TEST(TaskGraph, RemoveDependency) {
  TaskGraph g = diamond();
  EXPECT_TRUE(g.remove_dependency(0, 1));
  EXPECT_FALSE(g.has_dependency(0, 1));
  EXPECT_FALSE(g.remove_dependency(0, 1));
  EXPECT_EQ(g.dependency_count(), 3u);
  // b is now a source.
  EXPECT_EQ(g.sources(), (std::vector<TaskId>{0, 1}));
}

TEST(TaskGraph, RemovedEdgeCanBeReAdded) {
  TaskGraph g = diamond();
  g.remove_dependency(0, 1);
  EXPECT_TRUE(g.add_dependency(0, 1, 0.5));
  EXPECT_DOUBLE_EQ(g.dependency_cost(0, 1), 0.5);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.sources(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{3});
}

TEST(TaskGraph, SuccessorsAndPredecessorsSorted) {
  const TaskGraph g = diamond();
  EXPECT_EQ(std::vector<TaskId>(g.successors(0).begin(), g.successors(0).end()),
            (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(std::vector<TaskId>(g.predecessors(3).begin(), g.predecessors(3).end()),
            (std::vector<TaskId>{1, 2}));
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& [from, to] : g.dependencies()) EXPECT_LT(pos[from], pos[to]);
}

TEST(TaskGraph, TopologicalOrderIsDeterministicSmallestIdFirst) {
  TaskGraph g;
  g.add_task("a", 1.0);
  g.add_task("b", 1.0);
  g.add_task("c", 1.0);
  // No edges: Kahn with a min-heap yields id order.
  EXPECT_EQ(g.topological_order(), (std::vector<TaskId>{0, 1, 2}));
}

TEST(TaskGraph, DependenciesListedLexicographically) {
  const TaskGraph g = diamond();
  const auto deps = g.dependencies();
  EXPECT_EQ(deps, (std::vector<std::pair<TaskId, TaskId>>{{0, 1}, {0, 2}, {1, 3}, {2, 3}}));
}

TEST(TaskGraph, TotalCost) { EXPECT_DOUBLE_EQ(diamond().total_cost(), 10.0); }

TEST(TaskGraph, StructurallyEqualDetectsWeightChange) {
  const TaskGraph a = diamond();
  TaskGraph b = diamond();
  EXPECT_TRUE(a.structurally_equal(b));
  b.set_cost(0, 1.5);
  EXPECT_FALSE(a.structurally_equal(b));
  EXPECT_TRUE(a.structurally_equal(b, 1.0));  // within tolerance
}

TEST(TaskGraph, StructurallyEqualDetectsEdgeChange) {
  const TaskGraph a = diamond();
  TaskGraph b = diamond();
  b.remove_dependency(0, 1);
  EXPECT_FALSE(a.structurally_equal(b));
  b.add_dependency(0, 1, 0.1);
  EXPECT_TRUE(a.structurally_equal(b));
  b.set_dependency_cost(0, 1, 0.9);
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(TaskGraph, LargeChainTopologicalOrder) {
  TaskGraph g;
  const int n = 500;
  TaskId prev = g.add_task(1.0);
  for (int i = 1; i < n; ++i) {
    const TaskId cur = g.add_task(1.0);
    g.add_dependency(prev, cur, 1.0);
    prev = cur;
  }
  const auto order = g.topological_order();
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], static_cast<TaskId>(i));
}

}  // namespace
}  // namespace saga
