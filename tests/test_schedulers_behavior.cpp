#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "datasets/random_graphs.hpp"
#include "sched/registry.hpp"
#include "schedulers/duplex.hpp"
#include "schedulers/fastest_node.hpp"
#include "schedulers/maxmin.hpp"
#include "schedulers/met.hpp"
#include "schedulers/minmin.hpp"
#include "schedulers/olb.hpp"
#include "schedulers/wba.hpp"

/// Behavioural invariants that distinguish the individual algorithms.

namespace saga {
namespace {

TEST(FastestNode, SerializesEverythingOnTheFastestNode) {
  const auto inst = fig1_instance();
  const Schedule s = FastestNodeScheduler{}.schedule(inst);
  const NodeId fastest = inst.network.fastest_node();
  for (const auto& a : s.assignments()) EXPECT_EQ(a.node, fastest);
  // Makespan equals the serial sum (no comm on one node, no idle gaps).
  EXPECT_DOUBLE_EQ(s.makespan(),
                   inst.graph.total_cost() / inst.network.speed(fastest));
}

TEST(FastestNode, LeavesNoIdleGaps) {
  const auto inst = chains_instance(3);
  const Schedule s = FastestNodeScheduler{}.schedule(inst);
  auto lane = s.on_node(inst.network.fastest_node());
  ASSERT_EQ(lane.size(), inst.graph.task_count());
  for (std::size_t i = 1; i < lane.size(); ++i) {
    EXPECT_DOUBLE_EQ(lane[i].start, lane[i - 1].finish);
  }
}

TEST(Met, UnderRelatedMachinesPicksTheFastestNodeForEveryTask) {
  // MET ignores availability, so on related machines it matches
  // FastestNode's placement (and makespan) exactly.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto inst = in_trees_instance(seed);
    const Schedule met = MetScheduler{}.schedule(inst);
    const Schedule fn = FastestNodeScheduler{}.schedule(inst);
    EXPECT_DOUBLE_EQ(met.makespan(), fn.makespan());
    const NodeId fastest = inst.network.fastest_node();
    for (const auto& a : met.assignments()) EXPECT_EQ(a.node, fastest);
  }
}

TEST(Duplex, NeverWorseThanEitherComponent) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = chains_instance(seed);
    const double duplex = DuplexScheduler{}.schedule(inst).makespan();
    const double minmin = MinMinScheduler{}.schedule(inst).makespan();
    const double maxmin = MaxMinScheduler{}.schedule(inst).makespan();
    EXPECT_DOUBLE_EQ(duplex, std::min(minmin, maxmin));
  }
}

TEST(Olb, SpreadsIndependentTasksAcrossAllNodes) {
  ProblemInstance inst;
  for (int i = 0; i < 6; ++i) inst.graph.add_task(1.0);
  inst.network = Network(3);
  const Schedule s = OlbScheduler{}.schedule(inst);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(s.on_node(v).size(), 2u);
}

TEST(Olb, IgnoresNodeSpeedEntirely) {
  // One node is absurdly slow, but OLB still round-robins onto it.
  ProblemInstance inst;
  for (int i = 0; i < 4; ++i) inst.graph.add_task(1.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 0.001);
  const Schedule s = OlbScheduler{}.schedule(inst);
  EXPECT_FALSE(s.on_node(1).empty());
}

TEST(MinMin, SchedulesShortTaskFirstOnIndependentTasks) {
  ProblemInstance inst;
  inst.graph.add_task("long", 10.0);
  inst.graph.add_task("short", 1.0);
  inst.network = Network(1);
  const Schedule s = MinMinScheduler{}.schedule(inst);
  EXPECT_LT(s.of_task(1).start, s.of_task(0).start);
}

TEST(MaxMin, SchedulesLongTaskFirstOnIndependentTasks) {
  ProblemInstance inst;
  inst.graph.add_task("long", 10.0);
  inst.graph.add_task("short", 1.0);
  inst.network = Network(1);
  const Schedule s = MaxMinScheduler{}.schedule(inst);
  EXPECT_LT(s.of_task(0).start, s.of_task(1).start);
}

TEST(MinMinVsMaxMin, DifferOnHeterogeneousIndependentWorkload) {
  // The classic configuration where MaxMin beats MinMin: several small
  // tasks and one huge task on two unequal nodes.
  ProblemInstance inst;
  inst.graph.add_task("huge", 100.0);
  for (int i = 0; i < 6; ++i) inst.graph.add_task(10.0);
  inst.network = Network(2);
  inst.network.set_speed(0, 2.0);
  const double minmin = MinMinScheduler{}.schedule(inst).makespan();
  const double maxmin = MaxMinScheduler{}.schedule(inst).makespan();
  EXPECT_LE(maxmin, minmin);
}

TEST(Wba, SeedChangesScheduleButNotValidity) {
  const auto inst = chains_instance(17);
  const Schedule a = WbaScheduler(1).schedule(inst);
  const Schedule b = WbaScheduler(2).schedule(inst);
  EXPECT_TRUE(a.validate(inst).ok);
  EXPECT_TRUE(b.validate(inst).ok);
  // Different seeds usually yield different placements somewhere.
  bool any_difference = false;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    if (a.of_task(t).node != b.of_task(t).node) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Wba, ZeroToleranceIsPureGreedy) {
  // With tolerance 0 the candidate band collapses to the argmin set, so
  // two different seeds can only differ by tie-breaks among equal-increase
  // options; the makespans must match.
  const auto inst = fig1_instance();
  const double a = WbaScheduler(1, 0.0).schedule(inst).makespan();
  const double b = WbaScheduler(2, 0.0).schedule(inst).makespan();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(HeftAndCpop, MatchOnFig1) {
  // Both find the same (good) schedule on the paper's example.
  const auto inst = fig1_instance();
  const double heft = make_scheduler("HEFT")->schedule(inst).makespan();
  const double cpop = make_scheduler("CPoP")->schedule(inst).makespan();
  EXPECT_NEAR(heft, 4.25, 1e-9);
  EXPECT_NEAR(cpop, 4.25, 1e-9);
}

TEST(Heft, UsesInsertionGaps) {
  // Construct a case where insertion beats append: a wide fork where a late
  // short task fits in an early idle gap on the fast node.
  ProblemInstance inst;
  const TaskId src = inst.graph.add_task("src", 1.0);
  const TaskId heavy = inst.graph.add_task("heavy", 10.0);
  const TaskId light = inst.graph.add_task("light", 1.0);
  inst.graph.add_dependency(src, heavy, 0.1);
  inst.graph.add_dependency(src, light, 20.0);  // must stay co-located
  inst.network = Network(2);
  const Schedule s = make_scheduler("HEFT")->schedule(inst);
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(Etf, PicksEarliestStartNotEarliestFinish) {
  // Two ready tasks on one idle homogeneous node pair: ETF schedules by
  // earliest start (ties to higher static level = bigger task).
  ProblemInstance inst;
  inst.graph.add_task("big", 10.0);
  inst.graph.add_task("small", 1.0);
  inst.network = Network(1);
  const Schedule s = make_scheduler("ETF")->schedule(inst);
  // Both could start at 0; the bigger static level (big) goes first.
  EXPECT_DOUBLE_EQ(s.of_task(0).start, 0.0);
}

TEST(AllSchedulers, NamesMatchRegistry) {
  for (const auto& name : all_scheduler_names()) {
    EXPECT_EQ(make_scheduler(name)->name(), name);
  }
}

TEST(Registry, UnknownSchedulerThrows) {
  EXPECT_THROW((void)make_scheduler("NoSuchAlgorithm"), std::invalid_argument);
}

TEST(Registry, RosterSizes) {
  EXPECT_EQ(all_scheduler_names().size(), 17u);
  EXPECT_EQ(benchmark_scheduler_names().size(), 15u);
  EXPECT_EQ(app_specific_scheduler_names().size(), 6u);
  EXPECT_EQ(make_benchmark_schedulers().size(), 15u);
}

TEST(Registry, RequirementsMatchPaperSectionVI) {
  // ETF, FCP, FLB: homogeneous node speeds. BIL, GDL, FCP, FLB: homogeneous
  // link strengths.
  const auto homogeneous_speeds = {"ETF", "FCP", "FLB"};
  const auto homogeneous_links = {"BIL", "GDL", "FCP", "FLB"};
  for (const auto& name : benchmark_scheduler_names()) {
    const auto reqs = make_scheduler(name)->requirements();
    const bool want_speed =
        std::find(homogeneous_speeds.begin(), homogeneous_speeds.end(), name) !=
        homogeneous_speeds.end();
    const bool want_links =
        std::find(homogeneous_links.begin(), homogeneous_links.end(), name) !=
        homogeneous_links.end();
    EXPECT_EQ(reqs.homogeneous_node_speeds, want_speed) << name;
    EXPECT_EQ(reqs.homogeneous_link_strengths, want_links) << name;
  }
}

}  // namespace
}  // namespace saga
