#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/csv.hpp"
#include "analysis/gantt.hpp"
#include "analysis/ratio_matrix.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"

namespace saga::analysis {
namespace {

pisa::PairwiseResult tiny_pairwise() {
  pisa::PairwiseResult result;
  result.scheduler_names = {"HEFT", "CPoP"};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  result.ratio = {{nan, 6.5}, {1.23, nan}};
  return result;
}

TEST(Gantt, ShowsEveryNodeLane) {
  const auto inst = fig1_instance();
  const auto schedule = make_scheduler("HEFT")->schedule(inst);
  const std::string text = render_gantt(inst, schedule);
  EXPECT_NE(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("node 1"), std::string::npos);
  EXPECT_NE(text.find("node 2"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

TEST(Gantt, TaskNamesAppearInLanes) {
  const auto inst = fig1_instance();
  const auto schedule = make_scheduler("HEFT")->schedule(inst);
  const std::string text = render_gantt(inst, schedule);
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find("t4"), std::string::npos);
}

TEST(Gantt, EmptyScheduleRendersMakespanOnly) {
  ProblemInstance inst;
  inst.network = Network(2);
  const std::string text = render_gantt(inst, Schedule{});
  EXPECT_NE(text.find("makespan = 0"), std::string::npos);
}

TEST(PairwiseTable, HasWorstRowAndClampedCells) {
  const auto table = pairwise_table(tiny_pairwise(), "Fig4");
  const std::string text = table.render();
  EXPECT_NE(text.find("Worst"), std::string::npos);
  EXPECT_NE(text.find(">5.0"), std::string::npos);  // 6.5 clamps
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_EQ(table.rows(), 3u);  // Worst + 2 baselines
}

TEST(AppSpecificTable, BenchmarkingRowFirst) {
  const auto ds = datasets::generate_dataset("chains", 1, 4);
  const auto benchmark = benchmark_dataset(ds, {"HEFT", "CPoP"}, 1);
  const auto table = app_specific_table(benchmark, tiny_pairwise(), "blast CCR=1");
  const std::string text = table.render();
  EXPECT_NE(text.find("Benchmarking"), std::string::npos);
  EXPECT_NE(text.find("HEFT (base)"), std::string::npos);
  EXPECT_EQ(table.rows(), 3u);
}

TEST(BenchmarkingTable, OneRowPerDataset) {
  const std::vector<std::string> names = {"HEFT", "OLB"};
  std::vector<DatasetBenchmark> benchmarks;
  benchmarks.push_back(benchmark_dataset(datasets::generate_dataset("chains", 1, 3), names, 1));
  benchmarks.push_back(
      benchmark_dataset(datasets::generate_dataset("in_trees", 1, 3), names, 1));
  const auto table = benchmarking_table(benchmarks, names, "Fig2");
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_NE(table.render().find("in_trees"), std::string::npos);
}

TEST(Csv, PairwiseFormat) {
  std::ostringstream out;
  write_pairwise_csv(out, tiny_pairwise());
  const std::string text = out.str();
  EXPECT_NE(text.find("baseline,target,ratio"), std::string::npos);
  EXPECT_NE(text.find("HEFT,CPoP,6.5"), std::string::npos);
  EXPECT_NE(text.find("CPoP,HEFT,1.23"), std::string::npos);
  // Two data rows plus header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Csv, PairwiseRendersInfAsWord) {
  auto result = tiny_pairwise();
  result.ratio[0][1] = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  write_pairwise_csv(out, result);
  EXPECT_NE(out.str().find("HEFT,CPoP,inf"), std::string::npos);
}

TEST(Csv, BenchmarkFormat) {
  const auto ds = datasets::generate_dataset("chains", 1, 3);
  std::vector<DatasetBenchmark> benchmarks = {benchmark_dataset(ds, {"HEFT"}, 1)};
  std::ostringstream out;
  write_benchmark_csv(out, benchmarks);
  EXPECT_NE(out.str().find("dataset,scheduler,min,q1,median,q3,max,mean"), std::string::npos);
  EXPECT_NE(out.str().find("chains,HEFT,"), std::string::npos);
}

TEST(Csv, MaybeWriteRespectsEnv) {
  unsetenv("SAGA_CSV_DIR");
  EXPECT_TRUE(maybe_write_csv("x", [](std::ostream&) {}).empty());

  const auto dir = std::filesystem::temp_directory_path() / "saga_csv_test";
  std::filesystem::create_directories(dir);
  setenv("SAGA_CSV_DIR", dir.c_str(), 1);
  const auto path = maybe_write_csv("unit", [](std::ostream& out) { out << "a,b\n"; });
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  unsetenv("SAGA_CSV_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace saga::analysis
