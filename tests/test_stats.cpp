#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"

namespace saga {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, KnownValue) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5); }

TEST(Stddev, FewerThanTwoIsZero) {
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stddev({5.0}), 0.0);
}

TEST(Stddev, KnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Quantile, EndpointsAreMinMax) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
}

TEST(Quantile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenValues) {
  // Sorted {1, 2}: q=0.5 -> 1.5.
  EXPECT_DOUBLE_EQ(quantile({2.0, 1.0}, 0.5), 1.5);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownFiveNumberSummary) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, ToStringContainsFields) {
  const std::string text = to_string(summarize({1.0, 2.0}));
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("min=1.00"), std::string::npos);
  EXPECT_NE(text.find("max=2.00"), std::string::npos);
}

TEST(FixedHistogram, RejectsBadBounds) {
  EXPECT_THROW(FixedHistogram({}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(FixedHistogram, EmptyReportsZero) {
  const FixedHistogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(FixedHistogram, BucketAssignmentUsesInclusiveUpperBounds) {
  FixedHistogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (inclusive)
  h.record(1.001);  // bucket 1
  h.record(100.0);  // bucket 2
  h.record(250.0);  // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 100.0 + 250.0);
}

TEST(FixedHistogram, PercentilesReturnBucketUpperBounds) {
  FixedHistogram h({1.0, 2.0, 5.0, 10.0});
  for (int i = 0; i < 90; ++i) h.record(1.5);   // bucket le=2
  for (int i = 0; i < 9; ++i) h.record(4.0);    // bucket le=5
  h.record(7.0);                                // bucket le=10
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(FixedHistogram, OverflowPercentileIsInfinity) {
  FixedHistogram h({1.0});
  h.record(50.0);
  EXPECT_TRUE(std::isinf(h.percentile(0.99)));
}

TEST(FixedHistogram, LatencyLadderCoversMicrosecondsToSeconds) {
  const FixedHistogram h = FixedHistogram::latency_us();
  ASSERT_FALSE(h.bounds().empty());
  EXPECT_DOUBLE_EQ(h.bounds().front(), 1.0);        // 1 µs
  EXPECT_DOUBLE_EQ(h.bounds().back(), 10'000'000);  // 10 s
}

}  // namespace
}  // namespace saga
