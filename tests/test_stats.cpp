#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace saga {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, KnownValue) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5); }

TEST(Stddev, FewerThanTwoIsZero) {
  EXPECT_EQ(stddev({}), 0.0);
  EXPECT_EQ(stddev({5.0}), 0.0);
}

TEST(Stddev, KnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Quantile, EndpointsAreMinMax) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
}

TEST(Quantile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenValues) {
  // Sorted {1, 2}: q=0.5 -> 1.5.
  EXPECT_DOUBLE_EQ(quantile({2.0, 1.0}, 0.5), 1.5);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownFiveNumberSummary) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summarize, UnsortedInputHandled) {
  const Summary s = summarize({9.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, ToStringContainsFields) {
  const std::string text = to_string(summarize({1.0, 2.0}));
  EXPECT_NE(text.find("n=2"), std::string::npos);
  EXPECT_NE(text.find("min=1.00"), std::string::npos);
  EXPECT_NE(text.find("max=2.00"), std::string::npos);
}

}  // namespace
}  // namespace saga
