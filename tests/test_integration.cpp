#include <gtest/gtest.h>

#include <sstream>

#include "analysis/benchmarking.hpp"
#include "analysis/ratio_matrix.hpp"
#include "core/app_specific.hpp"
#include "core/pairwise.hpp"
#include "datasets/registry.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"

/// End-to-end flows mirroring what the bench binaries do, at toy scale.

namespace saga {
namespace {

TEST(Integration, MiniFig2Pipeline) {
  // Benchmark three schedulers on two datasets and render the Fig. 2 table.
  const std::vector<std::string> roster = {"HEFT", "CPoP", "FastestNode"};
  std::vector<analysis::DatasetBenchmark> benchmarks;
  for (const char* ds : {"chains", "blast"}) {
    benchmarks.push_back(
        analysis::benchmark_dataset(datasets::generate_dataset(ds, 42, 5), roster, 42));
  }
  const auto table = analysis::benchmarking_table(benchmarks, roster, "mini fig2");
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 3u);
  // FastestNode serialises everything; on parallel-friendly datasets its
  // max ratio should exceed HEFT's.
  const double fn_max = benchmarks[0].for_scheduler("FastestNode").summary.max;
  const double heft_max = benchmarks[0].for_scheduler("HEFT").summary.max;
  EXPECT_GE(fn_max, heft_max);
}

TEST(Integration, MiniFig4Pipeline) {
  const std::vector<std::string> roster = {"HEFT", "FastestNode", "OLB"};
  pisa::PairwiseOptions options;
  options.pisa.restarts = 2;
  options.pisa.params.max_iterations = 80;
  const auto grid = pisa::pairwise_compare(roster, options, 42);
  const auto table = analysis::pairwise_table(grid, "mini fig4");
  EXPECT_EQ(table.rows(), 4u);  // Worst + 3
  // Every scheduler has a worst case above 1 against someone.
  for (double w : grid.worst_per_target()) EXPECT_GT(w, 1.0);
}

TEST(Integration, AdversarialWitnessSurvivesSerializationRoundTrip) {
  // PISA result -> save -> load -> replay: the ratio must be identical.
  // This is the publishing workflow the paper's conclusion proposes.
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  pisa::PisaOptions options;
  options.restarts = 2;
  const auto found = pisa::run_pisa(*heft, *fn, options, 7);
  const std::string text = instance_to_string(found.best_instance);
  const auto replayed = instance_from_string(text);
  EXPECT_DOUBLE_EQ(pisa::makespan_ratio(*heft, *fn, replayed), found.best_ratio);
}

TEST(Integration, MiniAppSpecificPipeline) {
  // One (workflow, CCR) cell of Fig. 10 end to end: benchmarking row plus
  // a 2-scheduler PISA grid.
  const std::vector<std::string> roster = {"HEFT", "CPoP"};
  auto ds = datasets::generate_dataset("srasearch", 3, 4);
  for (auto& inst : ds.instances) workflows::set_homogeneous_ccr(inst, 1.0);
  const auto benchmark = analysis::benchmark_dataset(ds, roster, 3);

  pisa::PairwiseOptions grid_options;
  grid_options.pisa = pisa::app_specific_options("srasearch", 1.0, 3);
  grid_options.pisa.restarts = 1;
  grid_options.pisa.params.max_iterations = 50;
  const auto grid = pisa::pairwise_compare(roster, grid_options, 3);

  const auto table = analysis::app_specific_table(benchmark, grid, "srasearch CCR=1.0");
  EXPECT_EQ(table.rows(), 3u);
  // PISA cells can only be >= the benchmarking cells' floor of 1.
  EXPECT_GE(grid.cell(0, 1), 1.0 - 1e-9);
  EXPECT_GE(grid.cell(1, 0), 1.0 - 1e-9);
}

TEST(Integration, AllSixteenDatasetsGenerateAndScheduleCleanly) {
  for (const auto& spec : datasets::all_dataset_specs()) {
    const auto inst = datasets::generate_instance(spec.name, 1, 0);
    const auto schedule = make_scheduler("HEFT")->schedule(inst);
    const auto validation = schedule.validate(inst);
    EXPECT_TRUE(validation.ok) << spec.name << ": " << validation.message;
  }
  EXPECT_EQ(datasets::all_dataset_specs().size(), 16u);
}

TEST(Integration, PaperInstanceCountsRecorded) {
  for (const auto& spec : datasets::all_dataset_specs()) {
    const bool is_workflow =
        std::find(datasets::workflow_dataset_names().begin(),
                  datasets::workflow_dataset_names().end(),
                  spec.name) != datasets::workflow_dataset_names().end();
    EXPECT_EQ(spec.paper_instance_count, is_workflow ? 100u : 1000u) << spec.name;
  }
}

}  // namespace
}  // namespace saga
