#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datasets/workflows/blast.hpp"
#include "graph/graph_stats.hpp"

namespace saga {
namespace {

TEST(GraphStats, EmptyGraph) {
  const auto stats = compute_graph_stats(TaskGraph{});
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.depth, 0u);
}

TEST(GraphStats, PureChain) {
  TaskGraph g;
  TaskId prev = g.add_task(2.0);
  for (int i = 0; i < 4; ++i) {
    const TaskId cur = g.add_task(2.0);
    g.add_dependency(prev, cur, 1.0);
    prev = cur;
  }
  const auto stats = compute_graph_stats(g);
  EXPECT_EQ(stats.depth, 5u);
  EXPECT_EQ(stats.level_width, 1u);
  EXPECT_DOUBLE_EQ(stats.parallelism, 1.0);
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.sinks, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_fan_in, 1.0);
}

TEST(GraphStats, IndependentEqualTasks) {
  TaskGraph g;
  for (int i = 0; i < 6; ++i) g.add_task(3.0);
  const auto stats = compute_graph_stats(g);
  EXPECT_EQ(stats.depth, 1u);
  EXPECT_EQ(stats.level_width, 6u);
  EXPECT_DOUBLE_EQ(stats.parallelism, 6.0);
  EXPECT_DOUBLE_EQ(stats.density, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_fan_in, 0.0);
  EXPECT_EQ(stats.sources, 6u);
  EXPECT_EQ(stats.sinks, 6u);
}

TEST(GraphStats, DiamondValues) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0);
  const TaskId b = g.add_task(2.0);
  const TaskId c = g.add_task(4.0);
  const TaskId d = g.add_task(1.0);
  g.add_dependency(a, b, 1.0);
  g.add_dependency(a, c, 1.0);
  g.add_dependency(b, d, 1.0);
  g.add_dependency(c, d, 1.0);
  const auto stats = compute_graph_stats(g);
  EXPECT_EQ(stats.depth, 3u);
  EXPECT_EQ(stats.level_width, 2u);
  // total 8, longest cost chain a-c-d = 6.
  EXPECT_DOUBLE_EQ(stats.parallelism, 8.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.density, 4.0 / 6.0);
  // non-sources: b (1), c (1), d (2).
  EXPECT_DOUBLE_EQ(stats.mean_fan_in, 4.0 / 3.0);
}

TEST(GraphStats, ZeroCostGraphHasUnitParallelism) {
  TaskGraph g;
  const TaskId a = g.add_task(0.0);
  const TaskId b = g.add_task(0.0);
  g.add_dependency(a, b, 0.0);
  EXPECT_DOUBLE_EQ(compute_graph_stats(g).parallelism, 1.0);
}

TEST(GraphStats, BlastShapeIsWideAndShallow) {
  Rng rng(5);
  const auto stats = compute_graph_stats(workflows::make_blast_graph(rng));
  EXPECT_EQ(stats.depth, 3u);                    // split / blastall / merges
  EXPECT_GE(stats.level_width, 8u);              // the shard layer
  EXPECT_GT(stats.parallelism, 3.0);             // embarrassingly parallel middle
  EXPECT_EQ(stats.sources, 1u);
  EXPECT_EQ(stats.sinks, 2u);
}

TEST(GraphStats, ToStringListsEveryField) {
  TaskGraph g;
  g.add_task(1.0);
  const std::string text = to_string(compute_graph_stats(g));
  for (const char* field : {"tasks=", "deps=", "depth=", "width=", "parallelism=",
                            "density=", "fan_in=", "sources=", "sinks="}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace saga
