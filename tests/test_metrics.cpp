#include <gtest/gtest.h>

#include <cmath>

#include "core/annealer.hpp"
#include "metrics/metrics.hpp"
#include "sched/registry.hpp"

namespace saga::metrics {
namespace {

ProblemInstance two_node_instance() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 2.0);
  const TaskId b = inst.graph.add_task("b", 2.0);
  inst.graph.add_dependency(a, b, 4.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 2.0);
  return inst;
}

TEST(Energy, SerialScheduleUsesOneNode) {
  const auto inst = two_node_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});
  s.add({1, 0, 2.0, 4.0});
  // Node 0: idle 0.1 * 4 + busy 1.0 * speed 1 * 4 = 4.4; no comm energy.
  EXPECT_NEAR(total_energy(inst, s), 0.1 * 4.0 + 1.0 * 1.0 * 4.0, 1e-12);
}

TEST(Energy, CrossNodeDependencyPaysCommEnergy) {
  const auto inst = two_node_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});
  s.add({1, 1, 6.0, 7.0});  // data arrives at 2 + 4/1 = 6; exec 2/2 = 1
  const double makespan = 7.0;
  const double expected = (0.1 * makespan + 1.0 * 1.0 * 2.0) +   // node 0
                          (0.1 * makespan + 1.0 * 2.0 * 1.0) +   // node 1 (speed 2)
                          0.05 * 4.0;                            // transfer
  EXPECT_NEAR(total_energy(inst, s), expected, 1e-12);
}

TEST(Energy, UnusedNodesArePoweredOff) {
  ProblemInstance inst;
  inst.graph.add_task("only", 1.0);
  inst.network = Network(10);
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  EXPECT_NEAR(total_energy(inst, s), 0.1 * 1.0 + 1.0 * 1.0 * 1.0, 1e-12);
}

TEST(Throughput, BottleneckNodeDetermsRate) {
  const auto inst = two_node_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});
  s.add({1, 1, 6.0, 7.0});
  // Busiest node is node 0 with 2 time units of work -> throughput 0.5.
  EXPECT_DOUBLE_EQ(pipeline_throughput(inst, s), 0.5);
}

TEST(Throughput, EmptyScheduleIsInfinite) {
  ProblemInstance inst;
  inst.network = Network(2);
  EXPECT_TRUE(std::isinf(pipeline_throughput(inst, Schedule{})));
}

TEST(Cost, ChargesSpeedWeightedOccupancy) {
  const auto inst = two_node_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});
  s.add({1, 1, 6.0, 7.0});
  // Node 0 rented until 2 at rate 1; node 1 rented until 7 at rate 2.
  EXPECT_DOUBLE_EQ(rental_cost(inst, s), 2.0 + 14.0);
}

TEST(Evaluate, MakespanMatchesSchedule) {
  const auto inst = fig1_instance();
  const auto s = make_scheduler("HEFT")->schedule(inst);
  EXPECT_DOUBLE_EQ(evaluate(Metric::kMakespan, inst, s), s.makespan());
}

TEST(Evaluate, InverseThroughputIsBottleneckTime) {
  const auto inst = two_node_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});
  s.add({1, 1, 6.0, 7.0});
  EXPECT_DOUBLE_EQ(evaluate(Metric::kInverseThroughput, inst, s), 2.0);
}

TEST(Evaluate, MetricNames) {
  EXPECT_EQ(to_string(Metric::kMakespan), "makespan");
  EXPECT_EQ(to_string(Metric::kEnergy), "energy");
  EXPECT_EQ(to_string(Metric::kInverseThroughput), "1/throughput");
  EXPECT_EQ(to_string(Metric::kCost), "cost");
}

TEST(MetricRatio, MakespanMetricMatchesPaperObjective) {
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  const auto inst = pisa::random_chain_instance(5);
  EXPECT_DOUBLE_EQ(metric_ratio(Metric::kMakespan, *heft, *cpop, inst),
                   pisa::makespan_ratio(*heft, *cpop, inst));
}

TEST(MetricRatio, FastestNodeIsEnergyFrugal) {
  // Serialising on one node avoids comm energy and extra idle power, so
  // HEFT's energy ratio against FastestNode is >= 1 whenever HEFT uses
  // more than one node.
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  int heft_never_cheaper = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    if (metric_ratio(Metric::kEnergy, *heft, *fn, inst) >= 1.0 - 1e-9) ++heft_never_cheaper;
  }
  EXPECT_GE(heft_never_cheaper, 18);
}

TEST(MetricPisa, AnnealerMaximisesEnergyRatioObjective) {
  // The generalised objective plugs into anneal_objective: hunting for
  // instances where HEFT burns the most energy relative to FastestNode.
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  const auto objective = [&](const ProblemInstance& inst) {
    return metric_ratio(Metric::kEnergy, *heft, *fn, inst);
  };
  pisa::AnnealingParams params;
  params.max_iterations = 150;
  const auto initial = pisa::random_chain_instance(3);
  const auto result = pisa::anneal_objective(objective, initial,
                                             pisa::PerturbationConfig::generic(), params, 3);
  EXPECT_GE(result.best_ratio, result.initial_ratio);
  EXPECT_GT(result.best_ratio, 1.0);
}

}  // namespace
}  // namespace saga::metrics
