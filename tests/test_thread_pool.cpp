#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace saga {
namespace {

TEST(ThreadPool, SpawnsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForWorksOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](std::size_t i) { total += static_cast<int>(i); });
  EXPECT_EQ(total.load(), 4950);
}

TEST(ThreadPool, ParallelForMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(500, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 17) throw std::logic_error("iteration failed");
                        }),
      std::logic_error);
}

TEST(ThreadPool, SequentialSubmitsRunInOrderOfCompletion) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.submit([&, i] {
      std::lock_guard lock(m);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // single worker drains FIFO
}

TEST(ThreadPool, QueueDepthTracksBacklogWhileWorkerIsBusy) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto gate = release.get_future().share();
  auto blocker = pool.submit([gate] { gate.wait(); });
  // Wait until the single worker holds the blocker, so everything submitted
  // next must queue.
  while (pool.jobs_completed() < 1) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(), 0u);

  constexpr int kJobs = 64;
  std::vector<std::future<int>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futures.push_back(pool.submit([i] { return i; }));
  EXPECT_EQ(pool.queue_depth(), static_cast<std::size_t>(kJobs));

  release.set_value();
  blocker.get();
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  // Every job was popped before its future was satisfied, so the backlog is
  // provably empty and the pick-up counter complete.
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.jobs_completed(), static_cast<std::size_t>(kJobs) + 1);
}

TEST(ThreadPool, CountersStayConsistentUnderConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 200;
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[kSubmitters];  // one lane per submitter
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kJobsEach; ++i) {
        futures[s].push_back(pool.submit([&ran] { ++ran; }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(ran.load(), kSubmitters * kJobsEach);
  EXPECT_EQ(pool.jobs_completed(), static_cast<std::size_t>(kSubmitters * kJobsEach));
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(GlobalPool, IsSingleton) { EXPECT_EQ(&global_pool(), &global_pool()); }

}  // namespace
}  // namespace saga
