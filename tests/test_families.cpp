#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "datasets/families.hpp"
#include "sched/registry.hpp"

namespace saga {
namespace {

TEST(HeftAdversarialFamily, StructureMatchesFig7) {
  const auto inst = families::heft_adversarial_instance(1);
  const auto& g = inst.graph;
  ASSERT_EQ(g.task_count(), 4u);
  EXPECT_EQ(g.name(0), "A");
  EXPECT_EQ(g.name(3), "D");
  EXPECT_DOUBLE_EQ(g.cost(0), 1.0);
  EXPECT_DOUBLE_EQ(g.cost(3), 1.0);
  EXPECT_TRUE(g.has_dependency(0, 1));
  EXPECT_TRUE(g.has_dependency(0, 2));
  EXPECT_TRUE(g.has_dependency(1, 3));
  EXPECT_TRUE(g.has_dependency(2, 3));
  EXPECT_DOUBLE_EQ(g.dependency_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.dependency_cost(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(g.dependency_cost(2, 3), 1.0);
}

TEST(HeftAdversarialFamily, NetworkIsHomogeneous) {
  const auto inst = families::heft_adversarial_instance(2);
  EXPECT_TRUE(inst.network.homogeneous_speeds());
  EXPECT_TRUE(inst.network.homogeneous_strengths());
}

TEST(HeftAdversarialFamily, HeftLosesToCpopOnAverage) {
  // The paper's Fig. 7: HEFT's makespan distribution sits well above
  // CPoP's on this family.
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  std::vector<double> heft_ms, cpop_ms;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto inst = families::heft_adversarial_instance(seed);
    heft_ms.push_back(heft->schedule(inst).makespan());
    cpop_ms.push_back(cpop->schedule(inst).makespan());
  }
  EXPECT_GT(mean(heft_ms), mean(cpop_ms));
}

TEST(CpopAdversarialFamily, StructureMatchesFig8) {
  const auto inst = families::cpop_adversarial_instance(1);
  const auto& g = inst.graph;
  ASSERT_EQ(g.task_count(), 11u);  // A + B..J (9) + K
  EXPECT_EQ(g.sources(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{10});
  for (TaskId t = 1; t <= 9; ++t) {
    EXPECT_TRUE(g.has_dependency(0, t));
    EXPECT_TRUE(g.has_dependency(t, 10));
  }
}

TEST(CpopAdversarialFamily, NetworkHasFastNodeWithWeakLink) {
  const auto inst = families::cpop_adversarial_instance(3);
  ASSERT_EQ(inst.network.node_count(), 4u);
  EXPECT_DOUBLE_EQ(inst.network.speed(0), 3.0);
  EXPECT_EQ(inst.network.fastest_node(), 0u);
  // The link from node 0 to the second-fastest node is the weakest of
  // node 0's links (by construction: ~N(1,1/3) vs ~N(10,5/3)).
  NodeId second = 1;
  for (NodeId v = 2; v < 4; ++v) {
    if (inst.network.speed(v) > inst.network.speed(second)) second = v;
  }
  for (NodeId v = 1; v < 4; ++v) {
    if (v == second) continue;
    EXPECT_LT(inst.network.strength(0, second), inst.network.strength(0, v));
  }
}

TEST(CpopAdversarialFamily, CpopLosesToHeftOnAverage) {
  // The paper's Fig. 8: CPoP's makespan distribution sits well above
  // HEFT's on this family.
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  std::vector<double> heft_ms, cpop_ms;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto inst = families::cpop_adversarial_instance(seed);
    heft_ms.push_back(heft->schedule(inst).makespan());
    cpop_ms.push_back(cpop->schedule(inst).makespan());
  }
  EXPECT_GT(mean(cpop_ms), mean(heft_ms));
}

TEST(Families, InstancesAreDeterministic) {
  const auto a = families::heft_adversarial_instance(5);
  const auto b = families::heft_adversarial_instance(5);
  EXPECT_TRUE(a.graph.structurally_equal(b.graph));
}

}  // namespace
}  // namespace saga
