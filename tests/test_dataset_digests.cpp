// Golden instance-digest regression suite: every registry dataset's
// paper-default instances (master seed 42, indices 0..3) must digest to the
// values pinned from the seed configuration in dataset_digests.inc — both
// through the historical generate_instance shim and through the
// DatasetRegistry spec path — proving the descriptor-based registry
// generates bit-identical graphs and networks.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dataset_digest.hpp"
#include "datasets/registry.hpp"

namespace {

using namespace saga;

struct GoldenDigest {
  const char* dataset;
  std::size_t index;
  std::uint64_t digest;
};

const GoldenDigest kGoldenDigests[] = {
#include "dataset_digests.inc"
};

constexpr std::uint64_t kMasterSeed = 42;

TEST(DatasetDigests, ShimPathMatchesSeedPins) {
  for (const auto& pin : kGoldenDigests) {
    const auto inst = datasets::generate_instance(pin.dataset, kMasterSeed, pin.index);
    EXPECT_EQ(saga::testing::instance_digest(inst), pin.digest)
        << pin.dataset << "[" << pin.index << "] via generate_instance";
  }
}

TEST(DatasetDigests, SpecPathMatchesSeedPins) {
  auto& registry = datasets::DatasetRegistry::instance();
  for (const auto& pin : kGoldenDigests) {
    const auto source = registry.make(pin.dataset, kMasterSeed);
    EXPECT_EQ(saga::testing::instance_digest(source->generate(pin.index)), pin.digest)
        << pin.dataset << "[" << pin.index << "] via DatasetRegistry::make";
  }
}

TEST(DatasetDigests, SeedSpecParamOverridesMasterSeed) {
  // `blast?seed=42` under any master seed equals plain blast under 42.
  auto& registry = datasets::DatasetRegistry::instance();
  const auto pinned = registry.make("blast?seed=42", 999);
  const auto direct = registry.make("blast", kMasterSeed);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(saga::testing::instance_digest(pinned->generate(i)),
              saga::testing::instance_digest(direct->generate(i)))
        << i;
  }
}

TEST(DatasetDigests, ExplicitDefaultParametersStayBitIdentical) {
  // Spelling out a default-valued parameter must not change the stream:
  // zero/default knobs fall through to the paper's draws.
  auto& registry = datasets::DatasetRegistry::instance();
  const std::pair<const char*, const char*> equivalents[] = {
      {"montage", "montage?min_nodes=4&max_nodes=12"},
      {"in_trees", "in_trees?levels=0"},
      {"etl", "etl?edge=0"},
  };
  for (const auto& [name, spec] : equivalents) {
    const auto a = registry.make(name, kMasterSeed);
    const auto b = registry.make(spec, kMasterSeed);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(saga::testing::instance_digest(a->generate(i)),
                saga::testing::instance_digest(b->generate(i)))
          << spec << "[" << i << "]";
    }
  }
}

TEST(DatasetDigests, PinsCoverEveryTable2Dataset) {
  std::vector<std::string> pinned;
  for (const auto& pin : kGoldenDigests) {
    if (pinned.empty() || pinned.back() != pin.dataset) pinned.emplace_back(pin.dataset);
  }
  std::vector<std::string> expected;
  for (const auto& spec : datasets::all_dataset_specs()) expected.push_back(spec.name);
  EXPECT_EQ(pinned, expected);
}

}  // namespace
