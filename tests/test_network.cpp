#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/network.hpp"

namespace saga {
namespace {

TEST(Network, RequiresAtLeastOneNode) {
  EXPECT_THROW(Network(0), std::invalid_argument);
}

TEST(Network, DefaultsToUnitWeights) {
  const Network net(3);
  for (NodeId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(net.speed(v), 1.0);
  EXPECT_DOUBLE_EQ(net.strength(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(net.strength(1, 2), 1.0);
}

TEST(Network, SelfLinksAreInfinite) {
  const Network net(2);
  EXPECT_TRUE(std::isinf(net.strength(0, 0)));
  EXPECT_TRUE(std::isinf(net.strength(1, 1)));
}

TEST(Network, StrengthIsSymmetric) {
  Network net(4);
  net.set_strength(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(net.strength(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(net.strength(3, 1), 2.5);
}

TEST(Network, PackedTriangleIndexingIsInjective) {
  Network net(5);
  double value = 1.0;
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = a + 1; b < 5; ++b) net.set_strength(a, b, value++);
  }
  value = 1.0;
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = a + 1; b < 5; ++b) EXPECT_DOUBLE_EQ(net.strength(a, b), value++);
  }
}

TEST(Network, RejectsNonPositiveWeights) {
  Network net(2);
  EXPECT_THROW(net.set_speed(0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.set_speed(0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_strength(0, 1, 0.0), std::invalid_argument);
}

TEST(Network, RejectsSelfLinkAssignment) {
  Network net(2);
  EXPECT_THROW(net.set_strength(1, 1, 5.0), std::invalid_argument);
}

TEST(Network, RejectsOutOfRangeIds) {
  Network net(2);
  EXPECT_THROW(net.set_strength(0, 5, 1.0), std::out_of_range);
}

TEST(Network, ExecTimeDividesBySpeed) {
  Network net(2);
  net.set_speed(1, 4.0);
  EXPECT_DOUBLE_EQ(net.exec_time(8.0, 1), 2.0);
  EXPECT_DOUBLE_EQ(net.exec_time(8.0, 0), 8.0);
}

TEST(Network, CommTimeDividesByStrength) {
  Network net(2);
  net.set_strength(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(net.comm_time(3.0, 0, 1), 6.0);
}

TEST(Network, IntraNodeCommIsFree) {
  const Network net(2);
  EXPECT_DOUBLE_EQ(net.comm_time(100.0, 1, 1), 0.0);
}

TEST(Network, ZeroDataCommIsFree) {
  const Network net(2);
  EXPECT_DOUBLE_EQ(net.comm_time(0.0, 0, 1), 0.0);
}

TEST(Network, InfiniteStrengthMeansFreeComm) {
  Network net(2);
  net.set_strength(0, 1, Network::kInfiniteStrength);
  EXPECT_DOUBLE_EQ(net.comm_time(100.0, 0, 1), 0.0);
}

TEST(Network, FastestNodePrefersLowestIdOnTies) {
  Network net(3);
  EXPECT_EQ(net.fastest_node(), 0u);
  net.set_speed(2, 2.0);
  EXPECT_EQ(net.fastest_node(), 2u);
  net.set_speed(1, 2.0);
  EXPECT_EQ(net.fastest_node(), 1u);
}

TEST(Network, HomogeneityChecks) {
  Network net(3);
  EXPECT_TRUE(net.homogeneous_speeds());
  EXPECT_TRUE(net.homogeneous_strengths());
  net.set_speed(1, 1.5);
  EXPECT_FALSE(net.homogeneous_speeds());
  EXPECT_TRUE(net.homogeneous_speeds(0.6));
  net.set_strength(0, 2, 3.0);
  EXPECT_FALSE(net.homogeneous_strengths());
}

TEST(Network, MeanInverseSpeed) {
  Network net(2);
  net.set_speed(0, 1.0);
  net.set_speed(1, 2.0);
  EXPECT_DOUBLE_EQ(net.mean_inverse_speed(), 0.75);
}

TEST(Network, MeanInverseStrengthIgnoresInfiniteLinks) {
  Network net(3);
  net.set_strength(0, 1, 2.0);
  net.set_strength(0, 2, Network::kInfiniteStrength);
  net.set_strength(1, 2, 1.0);
  // (0.5 + 0 + 1.0) / 3
  EXPECT_DOUBLE_EQ(net.mean_inverse_strength(), 0.5);
}

TEST(Network, SingleNodeNetworkHasZeroMeanInverseStrength) {
  const Network net(1);
  EXPECT_DOUBLE_EQ(net.mean_inverse_strength(), 0.0);
}

}  // namespace
}  // namespace saga
