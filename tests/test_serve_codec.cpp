#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "datasets/registry.hpp"
#include "exp/json.hpp"
#include "graph/network.hpp"
#include "graph/problem_instance.hpp"
#include "graph/serialization.hpp"
#include "sched/registry.hpp"
#include "serve/codec.hpp"

namespace saga::serve {
namespace {

using exp::Json;

/// Structural equality via the exact text serialization: two instances are
/// the same iff their round-trip-exact text forms match byte for byte.
void expect_same_instance(const ProblemInstance& a, const ProblemInstance& b) {
  EXPECT_EQ(instance_to_string(a), instance_to_string(b));
}

TEST(ServeCodec, Fig1RoundTripsExactly) {
  const ProblemInstance inst = fig1_instance();
  const Json encoded = instance_to_json(inst);
  const ProblemInstance decoded = instance_from_json(encoded);
  expect_same_instance(inst, decoded);
  // encode -> decode -> encode is byte-identical: the codec is canonical.
  EXPECT_EQ(encoded.dump(), instance_to_json(decoded).dump());
}

TEST(ServeCodec, RegistryInstancesRoundTripByteIdentically) {
  // 25 instances spanning every structural corner the registry generates:
  // random graph families, workflows, IoT apps, and parameterized specs.
  const std::vector<std::string> specs = {
      "chains", "in_trees", "out_trees",   "erdos",      "montage",
      "blast",  "bwa",      "epigenomics", "seismology", "etl",
      "stats",  "train",    "predict",     "chains?length=17", "erdos?n=12&p=0.3",
  };
  std::size_t round_tripped = 0;
  for (const auto& spec : specs) {
    for (std::size_t index = 0; index < 2 && round_tripped < 25; ++index) {
      const ProblemInstance inst = datasets::generate_instance(spec, 42, index);
      const ProblemInstance decoded = instance_from_json(instance_to_json(inst));
      expect_same_instance(inst, decoded);
      EXPECT_EQ(instance_to_json(inst).dump(), instance_to_json(decoded).dump())
          << "codec not canonical for " << spec << "[" << index << "]";
      ++round_tripped;
    }
  }
  EXPECT_GE(round_tripped, 25u);
}

TEST(ServeCodec, InfiniteStrengthsCrossTheWire) {
  ProblemInstance inst;
  inst.graph.add_task("a", 1.0);
  inst.graph.add_task("b", 2.0);
  ASSERT_TRUE(inst.graph.add_dependency(0, 1, 3.0));
  inst.network = Network(3);
  inst.network.set_speed(0, 1.0);
  inst.network.set_speed(1, 2.0);
  inst.network.set_speed(2, 4.0);
  inst.network.set_strength(0, 1, Network::kInfiniteStrength);
  inst.network.set_strength(0, 2, 2.5);
  inst.network.set_strength(1, 2, Network::kInfiniteStrength);

  const Json encoded = instance_to_json(inst);
  const ProblemInstance decoded = instance_from_json(encoded);
  EXPECT_TRUE(std::isinf(decoded.network.strength(0, 1)));
  EXPECT_DOUBLE_EQ(decoded.network.strength(0, 2), 2.5);
  expect_same_instance(inst, decoded);
  EXPECT_EQ(encoded.dump(), instance_to_json(decoded).dump());
}

TEST(ServeCodec, ScheduleRoundTripsExactly) {
  const ProblemInstance inst = fig1_instance();
  const auto scheduler = make_scheduler("HEFT");
  const Schedule schedule = scheduler->schedule(inst);
  const Json encoded = schedule_to_json(schedule);
  const Schedule decoded = schedule_from_json(encoded);
  EXPECT_DOUBLE_EQ(decoded.makespan(), schedule.makespan());
  EXPECT_TRUE(decoded.validate(inst).ok);
  EXPECT_EQ(encoded.dump(), schedule_to_json(decoded).dump());
}

TEST(ServeCodec, LoadInstanceAutoSniffsBothFormats) {
  const ProblemInstance inst = fig1_instance();
  {
    std::istringstream text(instance_to_string(inst));
    expect_same_instance(load_instance_auto(text), inst);
  }
  {
    std::istringstream json("  \n " + instance_to_json(inst).dump(2));
    expect_same_instance(load_instance_auto(json), inst);
  }
}

TEST(ServeCodec, RejectsWrongHeader) {
  EXPECT_THROW(instance_from_json(Json::parse(R"({"version": 1})")), std::invalid_argument);
  EXPECT_THROW(
      instance_from_json(Json::parse(R"({"format": "saga-schedule", "version": 1})")),
      std::invalid_argument);
  try {
    (void)instance_from_json(
        Json::parse(R"({"format": "saga-instance", "version": 2, "tasks": [],
                        "deps": [], "nodes": [{"speed": 1}], "links": []})"));
    FAIL() << "version 2 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(ServeCodec, UnknownKeySuggestsNearestWithPosition) {
  try {
    (void)instance_from_json(
        Json::parse(R"({"format": "saga-instance", "version": 1, "tasks": [],
                        "deps": [], "nodes": [{"speed": 1}], "links": [], "taks": []})"));
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean 'tasks'"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
}

TEST(ServeCodec, RejectsStructuralViolations) {
  const auto parse_instance = [](const std::string& body) {
    return instance_from_json(Json::parse(body));
  };
  // Dependency referencing a task that does not exist.
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [{"cost": 1}], "deps": [{"from": 0, "to": 5, "size": 0}],
      "nodes": [{"speed": 1}], "links": []})"),
               std::invalid_argument);
  // Self-loop.
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [{"cost": 1}], "deps": [{"from": 0, "to": 0, "size": 0}],
      "nodes": [{"speed": 1}], "links": []})"),
               std::invalid_argument);
  // Cycle.
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [{"cost": 1}, {"cost": 1}],
      "deps": [{"from": 0, "to": 1, "size": 0}, {"from": 1, "to": 0, "size": 0}],
      "nodes": [{"speed": 1}], "links": []})"),
               std::invalid_argument);
  // Missing link (2 nodes need exactly one).
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [], "deps": [],
      "nodes": [{"speed": 1}, {"speed": 1}], "links": []})"),
               std::invalid_argument);
  // Repeated pair (b,a duplicates a,b).
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [], "deps": [],
      "nodes": [{"speed": 1}, {"speed": 1}, {"speed": 1}],
      "links": [{"a": 0, "b": 1, "strength": 1}, {"a": 1, "b": 0, "strength": 1},
                {"a": 1, "b": 2, "strength": 1}]})"),
               std::invalid_argument);
  // Non-positive strength.
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [], "deps": [],
      "nodes": [{"speed": 1}, {"speed": 1}],
      "links": [{"a": 0, "b": 1, "strength": 0}]})"),
               std::invalid_argument);
  // Zero nodes.
  EXPECT_THROW(parse_instance(R"({"format": "saga-instance", "version": 1,
      "tasks": [], "deps": [], "nodes": [], "links": []})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace saga::serve
