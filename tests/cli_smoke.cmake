# End-to-end smoke test for the saga CLI, run by ctest in script mode:
#   cmake -DSAGA_CLI=<path-to-saga> -DWORK_DIR=<scratch-dir> -P cli_smoke.cmake
# Exercises: list, generate -> schedule -> validate, and compare.

if(NOT SAGA_CLI)
  message(FATAL_ERROR "pass -DSAGA_CLI=<path to the saga binary>")
endif()
if(NOT WORK_DIR)
  message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(saga_step name)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' failed (exit ${rv})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_output "${out}" PARENT_SCOPE)
endfunction()

# 1. saga list must run, exit 0, and mention a known dataset and scheduler.
saga_step(list list)
if(NOT list_output MATCHES "blast")
  message(FATAL_ERROR "saga list does not mention the blast dataset:\n${list_output}")
endif()
if(NOT list_output MATCHES "HEFT")
  message(FATAL_ERROR "saga list does not mention the HEFT scheduler:\n${list_output}")
endif()

# 2. generate an instance, write it to disk.
execute_process(COMMAND ${SAGA_CLI} generate blast 0
  RESULT_VARIABLE rv
  OUTPUT_FILE ${WORK_DIR}/instance.txt
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "saga generate blast 0 failed (exit ${rv}):\n${err}")
endif()

# 3. schedule it with HEFT; the schedule (plus Gantt) goes to a file.
execute_process(COMMAND ${SAGA_CLI} schedule HEFT ${WORK_DIR}/instance.txt
  RESULT_VARIABLE rv
  OUTPUT_FILE ${WORK_DIR}/schedule.txt
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "saga schedule HEFT failed (exit ${rv}):\n${err}")
endif()

# 4. validate the schedule against the instance.
saga_step(validate validate ${WORK_DIR}/instance.txt ${WORK_DIR}/schedule.txt)
if(NOT validate_output MATCHES "^valid")
  message(FATAL_ERROR "saga validate did not report a valid schedule:\n${validate_output}")
endif()

# 4b. timed repeat mode must run and report throughput on stderr.
execute_process(COMMAND ${SAGA_CLI} schedule HEFT ${WORK_DIR}/instance.txt --repeat 5 --time
  RESULT_VARIABLE rv
  OUTPUT_FILE ${WORK_DIR}/schedule_timed.txt
  ERROR_VARIABLE timed_err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "saga schedule --repeat --time failed (exit ${rv}):\n${timed_err}")
endif()
if(NOT timed_err MATCHES "schedules/sec")
  message(FATAL_ERROR "saga schedule --time did not report throughput:\n${timed_err}")
endif()

# 5. compare a couple of schedulers on the same instance.
saga_step(compare compare ${WORK_DIR}/instance.txt HEFT MinMin)

# 5b. dataset registry: tag enumeration and parameterized spec strings.
saga_step(list_datasets list --datasets)
if(NOT list_datasets_output MATCHES "table2")
  message(FATAL_ERROR "saga list --datasets does not mention the table2 tag:\n${list_datasets_output}")
endif()
saga_step(list_datasets_tag list --datasets workflow)
if(NOT list_datasets_tag_output MATCHES "montage")
  message(FATAL_ERROR "saga list --datasets workflow does not mention montage:\n${list_datasets_tag_output}")
endif()
execute_process(COMMAND ${SAGA_CLI} generate "montage?n=12&ccr=1" 0
  RESULT_VARIABLE rv
  OUTPUT_FILE ${WORK_DIR}/spec_instance.txt
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "saga generate with a dataset spec string failed (exit ${rv}):\n${err}")
endif()
execute_process(COMMAND ${SAGA_CLI} schedule HEFT ${WORK_DIR}/spec_instance.txt
  RESULT_VARIABLE rv
  OUTPUT_QUIET
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "saga schedule on a spec-generated instance failed (exit ${rv}):\n${err}")
endif()
execute_process(COMMAND ${SAGA_CLI} generate no_such_dataset 0 RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "saga generate accepted an unknown dataset")
endif()

# 6. unknown subcommands must fail loudly, not exit 0.
execute_process(COMMAND ${SAGA_CLI} no-such-command RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
if(rv EQUAL 0)
  message(FATAL_ERROR "saga accepted an unknown subcommand")
endif()

message(STATUS "cli_smoke: all steps passed")
