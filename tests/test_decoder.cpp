#include <gtest/gtest.h>

#include "sched/decoder.hpp"
#include "sched/ranks.hpp"
#include "sched/registry.hpp"

namespace saga {
namespace {

ProblemInstance fork_join() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 2.0);
  const TaskId c = inst.graph.add_task("c", 2.0);
  const TaskId d = inst.graph.add_task("d", 1.0);
  inst.graph.add_dependency(a, b, 1.0);
  inst.graph.add_dependency(a, c, 1.0);
  inst.graph.add_dependency(b, d, 1.0);
  inst.graph.add_dependency(c, d, 1.0);
  inst.network = Network(2);
  return inst;
}

TEST(Decoder, ProducesValidSchedules) {
  const auto inst = fork_join();
  ScheduleEncoding encoding;
  encoding.assignment = {0, 1, 0, 1};
  encoding.priority = {4, 3, 2, 1};
  const Schedule s = decode_schedule(inst, encoding);
  EXPECT_TRUE(s.validate(inst).ok);
  for (TaskId t = 0; t < 4; ++t) EXPECT_EQ(s.of_task(t).node, encoding.assignment[t]);
}

TEST(Decoder, PriorityBreaksReadyTies) {
  ProblemInstance inst;
  inst.graph.add_task("x", 1.0);
  inst.graph.add_task("y", 1.0);
  inst.network = Network(1);
  ScheduleEncoding encoding;
  encoding.assignment = {0, 0};
  encoding.priority = {0.0, 1.0};  // y first
  const Schedule s = decode_schedule(inst, encoding);
  EXPECT_LT(s.of_task(1).start, s.of_task(0).start);
}

TEST(Decoder, RespectsPrecedenceRegardlessOfPriority) {
  const auto inst = fork_join();
  ScheduleEncoding encoding;
  encoding.assignment = {0, 0, 0, 0};
  encoding.priority = {0, 0, 0, 100};  // sink "wants" to go first but can't
  const Schedule s = decode_schedule(inst, encoding);
  EXPECT_TRUE(s.validate(inst).ok);
  EXPECT_GT(s.of_task(3).start, s.of_task(0).start);
}

TEST(Decoder, RejectsBadEncodings) {
  const auto inst = fork_join();
  ScheduleEncoding short_encoding;
  short_encoding.assignment = {0, 0};
  short_encoding.priority = {0, 0};
  EXPECT_THROW((void)decode_schedule(inst, short_encoding), std::invalid_argument);

  ScheduleEncoding bad_node;
  bad_node.assignment = {0, 0, 0, 9};
  bad_node.priority = {0, 0, 0, 0};
  EXPECT_THROW((void)decode_schedule(inst, bad_node), std::invalid_argument);
}

TEST(Decoder, HeftEncodingReproducesHeftMakespan) {
  // Decoding HEFT's own (assignment, upward-rank priority) cannot do better
  // than HEFT with insertion, but must stay close; on Fig. 1 they coincide.
  const auto inst = fig1_instance();
  const Schedule heft = make_scheduler("HEFT")->schedule(inst);
  ScheduleEncoding encoding;
  encoding.assignment.resize(inst.graph.task_count());
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    encoding.assignment[t] = heft.of_task(t).node;
  }
  encoding.priority = upward_ranks(inst);
  EXPECT_DOUBLE_EQ(decoded_makespan(inst, encoding), heft.makespan());
}

}  // namespace
}  // namespace saga
