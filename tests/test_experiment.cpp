// The declarative experiment layer: ExperimentSpec JSON round-trip with
// unknown-key rejection, --set overrides, @tag roster expansion, validation
// errors, and — crucially — bit-identical equivalence between
// run_experiment() and the underlying drivers it replaced
// (pairwise_compare / benchmark_dataset / make_scheduler).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analysis/benchmarking.hpp"
#include "core/pairwise.hpp"
#include "datasets/registry.hpp"
#include "exp/experiment.hpp"
#include "sched/registry.hpp"

namespace {

using namespace saga;
using exp::ExperimentSpec;
using exp::Json;
using exp::Mode;

ExperimentSpec small_pisa_spec() {
  ExperimentSpec spec;
  spec.mode = Mode::kPisaPairwise;
  spec.schedulers = {"HEFT", "FastestNode", "CPoP"};
  spec.pisa.restarts = 2;
  spec.pisa.max_iterations = 60;
  spec.seed = 42;
  return spec;
}

TEST(ExperimentSpecJson, RoundTripsThroughJson) {
  ExperimentSpec spec = small_pisa_spec();
  spec.name = "round-trip";
  spec.csv = "out.csv";
  spec.threads = 2;
  const ExperimentSpec reparsed = ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed.to_json().dump(), spec.to_json().dump());
  EXPECT_EQ(reparsed.name, "round-trip");
  EXPECT_EQ(reparsed.mode, Mode::kPisaPairwise);
  EXPECT_EQ(reparsed.schedulers, spec.schedulers);
  EXPECT_EQ(reparsed.pisa.restarts, 2u);
  EXPECT_EQ(reparsed.seed, 42u);
  EXPECT_EQ(reparsed.threads, 2u);
  EXPECT_EQ(reparsed.csv, "out.csv");
}

TEST(ExperimentSpecJson, BenchmarkAndScheduleFieldsRoundTrip) {
  ExperimentSpec spec;
  spec.mode = Mode::kBenchmark;
  spec.schedulers = {"@app-specific"};
  spec.datasets = {{"blast", 4}, {"montage", 0}};
  EXPECT_EQ(ExperimentSpec::from_json(spec.to_json()).to_json().dump(),
            spec.to_json().dump());

  ExperimentSpec schedule;
  schedule.mode = Mode::kSchedule;
  schedule.schedulers = {"HEFT"};
  schedule.instance.dataset = "blast";
  schedule.instance.index = 3;
  const ExperimentSpec reparsed = ExperimentSpec::from_json(schedule.to_json());
  EXPECT_EQ(reparsed.instance.dataset, "blast");
  EXPECT_EQ(reparsed.instance.index, 3u);
}

TEST(ExperimentSpecJson, RejectsUnknownKeysWithSuggestion) {
  const Json doc = Json::parse(R"({"mode": "schedule", "schedulrs": ["HEFT"]})");
  try {
    (void)ExperimentSpec::from_json(doc);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'schedulrs'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'schedulers'?"), std::string::npos) << what;
  }
  EXPECT_THROW(
      (void)ExperimentSpec::from_json(Json::parse(R"({"pisa": {"restart": 1}})")),
      std::invalid_argument);
  EXPECT_THROW(
      (void)ExperimentSpec::from_json(Json::parse(R"({"instance": {"files": "x"}})")),
      std::invalid_argument);
}

TEST(ExperimentSpecJson, RejectsBadModeAndNegativeCounts) {
  EXPECT_THROW((void)ExperimentSpec::from_json(Json::parse(R"({"mode": "benchmrk"})")),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::from_json(Json::parse(R"({"seed": -1})")),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::from_json(Json::parse(R"({"seed": 1.5})")),
               std::invalid_argument);
}

TEST(ExperimentSpecJson, LoadReadsSpecFilesAndReportsMissingOnes) {
  const std::string path = testing::TempDir() + "/spec_load_test.json";
  {
    std::ofstream out(path);
    out << R"({"mode": "schedule", "schedulers": ["HEFT"],
               "instance": {"dataset": "blast", "index": 1}})";
  }
  const auto spec = ExperimentSpec::load(path);
  EXPECT_EQ(spec.mode, Mode::kSchedule);
  EXPECT_EQ(spec.instance.index, 1u);
  EXPECT_THROW((void)ExperimentSpec::load(path + ".does-not-exist"), std::runtime_error);
}

TEST(ExperimentSpecJson, SingleSchedulerStringIsAccepted) {
  const auto spec = ExperimentSpec::from_json(Json::parse(R"({"schedulers": "HEFT"})"));
  ASSERT_EQ(spec.schedulers.size(), 1u);
  EXPECT_EQ(spec.schedulers[0], "HEFT");
}

TEST(ExperimentOverrides, SetOverridesScalarsPathsAndArrays) {
  Json doc = Json::parse(R"({"mode": "pisa-pairwise", "pisa": {"restarts": 5}})");
  exp::apply_override(doc, "pisa.restarts=2");
  exp::apply_override(doc, "seed=7");
  exp::apply_override(doc, "schedulers=[\"HEFT\", \"CPoP\"]");
  exp::apply_override(doc, "name=quick check");  // bare words become strings
  const auto spec = ExperimentSpec::from_json(doc);
  EXPECT_EQ(spec.pisa.restarts, 2u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.schedulers.size(), 2u);
  EXPECT_EQ(spec.name, "quick check");
}

TEST(ExperimentOverrides, SetCreatesIntermediateObjectsAndRejectsBadPaths) {
  Json doc = Json::object();
  exp::apply_override(doc, "pisa.alpha=0.5");
  EXPECT_DOUBLE_EQ(doc.find("pisa")->find("alpha")->as_number(), 0.5);
  EXPECT_THROW(exp::apply_override(doc, "noequals"), std::invalid_argument);
  EXPECT_THROW(exp::apply_override(doc, "=5"), std::invalid_argument);
  EXPECT_THROW(exp::apply_override(doc, "a..b=5"), std::invalid_argument);
}

TEST(ExperimentValidate, DiagnosesBadSpecs) {
  ExperimentSpec spec;  // no schedulers
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_pisa_spec();
  spec.schedulers = {"heff"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_pisa_spec();
  spec.schedulers = {"HEFT"};  // pairwise needs two
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = small_pisa_spec();
  spec.pisa.alpha = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = ExperimentSpec();
  spec.mode = Mode::kBenchmark;
  spec.schedulers = {"HEFT"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no datasets
  spec.datasets = {{"blasted", 2}};
  try {
    spec.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'blast'?"), std::string::npos)
        << e.what();
  }

  spec = ExperimentSpec();
  spec.mode = Mode::kSchedule;
  spec.schedulers = {"HEFT"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // no instance
  spec.instance.dataset = "blast";
  spec.instance.file = "also.txt";
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // ambiguous ref
}

TEST(ExperimentRoster, TagExpansionMatchesHistoricalRosterOrder) {
  ExperimentSpec spec;
  spec.schedulers = {"@benchmark"};
  EXPECT_EQ(spec.resolved_schedulers(), benchmark_scheduler_names());
  spec.schedulers = {"@nope"};
  EXPECT_THROW((void)spec.resolved_schedulers(), std::invalid_argument);
  spec.schedulers = {"ga?gens=5", "@app-specific"};
  const auto roster = spec.resolved_schedulers();
  EXPECT_EQ(roster.size(), 1u + app_specific_scheduler_names().size());
  EXPECT_EQ(roster.front(), "ga?gens=5");
}

TEST(ExperimentRun, PisaPairwiseIsBitIdenticalToPairwiseCompare) {
  // The acceptance pin: a spec-driven grid must reproduce the direct
  // pairwise_compare() path cell for cell.
  const ExperimentSpec spec = small_pisa_spec();
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink);

  pisa::PairwiseOptions options;
  options.pisa = spec.pisa.to_options();
  const auto direct = pisa::pairwise_compare(spec.schedulers, options, spec.seed);

  ASSERT_EQ(result.pairwise.scheduler_names, direct.scheduler_names);
  for (std::size_t row = 0; row < direct.ratio.size(); ++row) {
    for (std::size_t col = 0; col < direct.ratio.size(); ++col) {
      if (row == col) continue;
      EXPECT_EQ(result.pairwise.ratio[row][col], direct.ratio[row][col])
          << "cell (" << row << ", " << col << ")";
    }
  }
  EXPECT_NE(sink.str().find("Worst"), std::string::npos);
}

TEST(ExperimentRun, SerialAndThreadedPisaGridsAgree) {
  ExperimentSpec spec = small_pisa_spec();
  std::ostringstream sink;
  const auto parallel = exp::run_experiment(spec, sink);
  spec.parallel = false;
  const auto serial = exp::run_experiment(spec, sink);
  spec.parallel = true;
  spec.threads = 2;
  const auto threaded = exp::run_experiment(spec, sink);
  for (std::size_t row = 0; row < spec.schedulers.size(); ++row) {
    for (std::size_t col = 0; col < spec.schedulers.size(); ++col) {
      if (row == col) continue;  // diagonal cells are NaN
      EXPECT_EQ(parallel.pairwise.ratio[row][col], serial.pairwise.ratio[row][col]);
      EXPECT_EQ(parallel.pairwise.ratio[row][col], threaded.pairwise.ratio[row][col]);
    }
  }
}

TEST(ExperimentRun, BenchmarkModeMatchesBenchmarkDataset) {
  ExperimentSpec spec;
  spec.mode = Mode::kBenchmark;
  spec.schedulers = {"@app-specific"};
  spec.datasets = {{"blast", 4}};
  spec.seed = 42;
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink);

  const auto dataset = datasets::generate_dataset("blast", spec.seed, 4);
  const auto direct =
      analysis::benchmark_dataset(dataset, app_specific_scheduler_names(), spec.seed);
  ASSERT_EQ(result.benchmarks.size(), 1u);
  ASSERT_EQ(result.benchmarks[0].per_scheduler.size(), direct.per_scheduler.size());
  for (std::size_t s = 0; s < direct.per_scheduler.size(); ++s) {
    EXPECT_EQ(result.benchmarks[0].per_scheduler[s].scheduler,
              direct.per_scheduler[s].scheduler);
    EXPECT_EQ(result.benchmarks[0].per_scheduler[s].ratios, direct.per_scheduler[s].ratios);
  }
}

TEST(ExperimentRun, ScheduleModeMatchesDirectConstruction) {
  ExperimentSpec spec;
  spec.mode = Mode::kSchedule;
  spec.schedulers = {"HEFT", "ga?pop=8&gens=5"};
  spec.instance.dataset = "blast";
  spec.seed = 42;
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink);
  ASSERT_EQ(result.schedules.size(), 2u);

  const auto inst = datasets::generate_instance("blast", 42, 0);
  EXPECT_EQ(result.schedules[0].makespan, make_scheduler("HEFT")->schedule(inst).makespan());
  EXPECT_TRUE(result.schedules[0].schedule.validate(inst).ok);
  EXPECT_TRUE(result.schedules[1].schedule.validate(inst).ok);
}

TEST(ExperimentRun, PairwiseBestInstancesReproduceTheirRatios) {
  const ExperimentSpec spec = small_pisa_spec();
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink);
  const auto& grid = result.pairwise;
  for (std::size_t row = 0; row < grid.ratio.size(); ++row) {
    for (std::size_t col = 0; col < grid.ratio.size(); ++col) {
      if (row == col || !std::isfinite(grid.ratio[row][col])) continue;
      // Deterministic schedulers: re-running on the stored instance must
      // reproduce the recorded worst-case ratio.
      const auto target = make_scheduler(grid.scheduler_names[col]);
      const auto baseline = make_scheduler(grid.scheduler_names[row]);
      const double target_makespan =
          target->schedule(grid.best_instance[row][col]).makespan();
      const double baseline_makespan =
          baseline->schedule(grid.best_instance[row][col]).makespan();
      EXPECT_NEAR(grid.ratio[row][col], target_makespan / baseline_makespan, 1e-9);
    }
  }
}

}  // namespace
