#include <gtest/gtest.h>

#include <vector>

#include "graph/instance_view.hpp"
#include "graph/problem_instance.hpp"

/// InstanceView: the flat snapshot every scheduler reads through. These
/// tests pin the sync contract — weight mutations refresh in place,
/// structural mutations rebuild the CSR arrays — and the arithmetic
/// equivalence with the Network/TaskGraph accessors.

namespace saga {
namespace {

ProblemInstance diamond() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 2.0);
  const TaskId c = inst.graph.add_task("c", 3.0);
  const TaskId d = inst.graph.add_task("d", 4.0);
  inst.graph.add_dependency(a, b, 0.5);
  inst.graph.add_dependency(a, c, 1.5);
  inst.graph.add_dependency(b, d, 2.5);
  inst.graph.add_dependency(c, d, 3.5);
  inst.network = Network(3);
  inst.network.set_speed(1, 2.0);
  inst.network.set_strength(0, 1, 4.0);
  inst.network.set_strength(1, 2, 0.25);
  return inst;
}

TEST(InstanceView, MirrorsGraphAndNetwork) {
  const auto inst = diamond();
  const InstanceView view(inst);
  ASSERT_EQ(view.task_count(), inst.graph.task_count());
  ASSERT_EQ(view.node_count(), inst.network.node_count());
  EXPECT_TRUE(view.in_sync_with(inst));

  for (TaskId t = 0; t < view.task_count(); ++t) {
    EXPECT_EQ(view.task_cost(t), inst.graph.cost(t));
    const auto preds = view.predecessors(t);
    const auto graph_preds = inst.graph.predecessors(t);
    ASSERT_EQ(preds.size(), graph_preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      EXPECT_EQ(preds[i].task, graph_preds[i]);
      EXPECT_EQ(preds[i].cost, inst.graph.dependency_cost(graph_preds[i], t));
    }
    for (NodeId v = 0; v < view.node_count(); ++v) {
      EXPECT_EQ(view.exec_time(t, v), inst.network.exec_time(inst.graph.cost(t), v));
    }
  }
  for (NodeId a = 0; a < view.node_count(); ++a) {
    for (NodeId b = 0; b < view.node_count(); ++b) {
      EXPECT_EQ(view.comm_time(1.25, a, b), inst.network.comm_time(1.25, a, b));
    }
  }
  EXPECT_EQ(view.mean_inverse_speed(), inst.network.mean_inverse_speed());
  EXPECT_EQ(view.mean_inverse_strength(), inst.network.mean_inverse_strength());

  const auto topo = inst.graph.topological_order();
  ASSERT_EQ(view.topological_order().size(), topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    EXPECT_EQ(view.topological_order()[i], topo[i]);
  }
}

TEST(InstanceView, WeightMutationRefreshesInPlace) {
  auto inst = diamond();
  InstanceView view(inst);

  inst.graph.set_cost(2, 9.0);
  inst.graph.set_dependency_cost(0, 1, 7.0);
  inst.network.set_speed(0, 5.0);
  EXPECT_FALSE(view.in_sync_with(inst));

  view.sync(inst);
  EXPECT_TRUE(view.in_sync_with(inst));
  EXPECT_EQ(view.task_cost(2), 9.0);
  EXPECT_EQ(view.predecessors(1)[0].cost, 7.0);
  EXPECT_EQ(view.node_speed(0), 5.0);
  EXPECT_EQ(view.mean_inverse_speed(), inst.network.mean_inverse_speed());
}

TEST(InstanceView, StructuralMutationRebuilds) {
  auto inst = diamond();
  InstanceView view(inst);

  ASSERT_TRUE(inst.graph.remove_dependency(1, 3));
  const TaskId e = inst.graph.add_task("e", 0.5);
  ASSERT_TRUE(inst.graph.add_dependency(3, e, 1.0));
  view.sync(inst);

  EXPECT_TRUE(view.in_sync_with(inst));
  ASSERT_EQ(view.task_count(), 5u);
  EXPECT_TRUE(view.predecessors(3).size() == 1 && view.predecessors(3)[0].task == 2);
  ASSERT_EQ(view.predecessors(e).size(), 1u);
  EXPECT_EQ(view.predecessors(e)[0].task, 3u);
  EXPECT_EQ(view.successors(1).size(), 0u);
  EXPECT_EQ(view.topological_order().size(), 5u);
}

TEST(InstanceView, NetworkReplacementOfDifferentSizeRebuilds) {
  auto inst = diamond();
  InstanceView view(inst);
  inst.network = Network(5);
  view.sync(inst);
  EXPECT_TRUE(view.in_sync_with(inst));
  EXPECT_EQ(view.node_count(), 5u);
  EXPECT_EQ(view.comm_time(2.0, 0, 4), inst.network.comm_time(2.0, 0, 4));
}

TEST(InstanceView, CopiedInstanceSharesStampsUntilMutated) {
  const auto inst = diamond();
  InstanceView view(inst);
  ProblemInstance copy = inst;  // equal content, equal stamps
  EXPECT_FALSE(view.in_sync_with(copy));  // different object, so not "in sync"
  view.sync(copy);                        // but sync is a cheap re-point
  EXPECT_TRUE(view.in_sync_with(copy));
  copy.graph.set_cost(0, 42.0);
  EXPECT_FALSE(view.in_sync_with(copy));  // mutation re-stamped the copy
}

}  // namespace
}  // namespace saga
