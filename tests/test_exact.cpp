#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"
#include "schedulers/brute_force.hpp"
#include "schedulers/exact_search.hpp"
#include "schedulers/smt_binary_search.hpp"

/// The exact solvers double as optimality oracles: on small instances the
/// heuristics can never beat BruteForce, and SMT must be within (1+eps).

namespace saga {
namespace {

TEST(ExactSearch, FindsOptimumOnFig1) {
  const auto inst = fig1_instance();
  const auto result = exact_search(inst);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(result.schedule->validate(inst).ok);
  // FastestNode achieves 5.9/1.5; nothing beats full serialisation here.
  EXPECT_NEAR(result.schedule->makespan(), 5.9 / 1.5, 1e-9);
}

TEST(ExactSearch, DecisionModeFindsFeasibleSchedule) {
  const auto inst = fig1_instance();
  ExactSearchOptions options;
  options.bound = 4.5;
  options.first_below_bound = true;
  const auto result = exact_search(inst, options);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_LT(result.schedule->makespan(), 4.5);
}

TEST(ExactSearch, DecisionModeRejectsInfeasibleBound) {
  const auto inst = fig1_instance();
  ExactSearchOptions options;
  options.bound = 1.0;  // impossible: critical path alone is longer
  options.first_below_bound = true;
  EXPECT_FALSE(exact_search(inst, options).schedule.has_value());
}

TEST(ExactSearch, StateBudgetThrows) {
  const auto inst = fig1_instance();
  ExactSearchOptions options;
  options.max_states = 3;
  EXPECT_THROW((void)exact_search(inst, options), std::runtime_error);
}

TEST(MakespanLowerBound, NeverExceedsOptimum) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const double lb = makespan_lower_bound(inst);
    const double opt = BruteForceScheduler{}.schedule(inst).makespan();
    EXPECT_LE(lb, opt + 1e-9) << "seed " << seed;
  }
}

TEST(MakespanLowerBound, TightOnChainWithFreeComm) {
  // All tasks serial on the fastest node with zero data: LB == OPT.
  ProblemInstance inst;
  TaskId prev = inst.graph.add_task(2.0);
  for (int i = 0; i < 3; ++i) {
    const TaskId cur = inst.graph.add_task(1.0);
    inst.graph.add_dependency(prev, cur, 0.0);
    prev = cur;
  }
  inst.network = Network(2);
  inst.network.set_speed(1, 2.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(inst), 2.5);
  EXPECT_DOUBLE_EQ(BruteForceScheduler{}.schedule(inst).makespan(), 2.5);
}

class HeuristicVsOracle : public ::testing::TestWithParam<std::string> {};

TEST_P(HeuristicVsOracle, NeverBeatsBruteForce) {
  const auto heuristic = make_scheduler(GetParam(), 3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const double h = heuristic->schedule(inst).makespan();
    const double opt = BruteForceScheduler{}.schedule(inst).makespan();
    EXPECT_GE(h, opt - 1e-9) << GetParam() << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicVsOracle,
                         ::testing::ValuesIn(benchmark_scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(SmtBinarySearch, WithinEpsilonOfOptimum) {
  const double eps = 0.01;
  SmtBinarySearchScheduler smt(eps);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const double approx = smt.schedule(inst).makespan();
    const double opt = BruteForceScheduler{}.schedule(inst).makespan();
    EXPECT_GE(approx, opt - 1e-9);
    EXPECT_LE(approx, (1.0 + eps) * opt + 1e-9) << "seed " << seed;
  }
}

TEST(SmtBinarySearch, ProducesValidSchedules) {
  SmtBinarySearchScheduler smt;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    EXPECT_TRUE(smt.schedule(inst).validate(inst).ok);
  }
}

TEST(SmtBinarySearch, HandlesZeroMakespanGraph) {
  ProblemInstance inst;
  inst.graph.add_task("free", 0.0);
  inst.network = Network(2);
  EXPECT_DOUBLE_EQ(SmtBinarySearchScheduler{}.schedule(inst).makespan(), 0.0);
}

TEST(BruteForce, StrictlyBeatsMinMinOnAntagonisticInstance) {
  // Independent tasks {4, 2} on speeds {2, 1}. MinMin grabs the small task
  // for the fast node first and ends at 3; the optimum crosses the
  // assignment (4 on fast, 2 on slow) for makespan 2.
  ProblemInstance inst;
  inst.graph.add_task("big", 4.0);
  inst.graph.add_task("small", 2.0);
  inst.network = Network(2);
  inst.network.set_speed(0, 2.0);
  const double opt = BruteForceScheduler{}.schedule(inst).makespan();
  const double minmin = make_scheduler("MinMin")->schedule(inst).makespan();
  EXPECT_DOUBLE_EQ(opt, 2.0);
  EXPECT_DOUBLE_EQ(minmin, 3.0);
}

}  // namespace
}  // namespace saga
