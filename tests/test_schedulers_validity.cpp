#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"

/// Property suite: every polynomial-time scheduler must produce a *valid*
/// schedule — all tasks exactly once, no node overlap, all data-arrival
/// constraints met — on instances drawn from every dataset family, and must
/// be deterministic for a fixed seed.

namespace saga {
namespace {

using Param = std::tuple<std::string /*scheduler*/, std::string /*dataset*/>;

class SchedulerValidity : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerValidity, ProducesValidSchedules) {
  const auto& [sched_name, dataset] = GetParam();
  const auto scheduler = make_scheduler(sched_name, 123);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto inst = datasets::generate_instance(dataset, 7, i);
    const Schedule s = scheduler->schedule(inst);
    const auto result = s.validate(inst);
    EXPECT_TRUE(result.ok) << sched_name << " on " << dataset << "[" << i
                           << "]: " << result.message;
    EXPECT_EQ(s.size(), inst.graph.task_count());
    EXPECT_GE(s.makespan(), 0.0);
  }
}

TEST_P(SchedulerValidity, DeterministicForFixedSeed) {
  const auto& [sched_name, dataset] = GetParam();
  const auto inst = datasets::generate_instance(dataset, 11, 0);
  const auto a = make_scheduler(sched_name, 5)->schedule(inst);
  const auto b = make_scheduler(sched_name, 5)->schedule(inst);
  ASSERT_EQ(a.size(), b.size());
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(a.of_task(t).node, b.of_task(t).node);
    EXPECT_DOUBLE_EQ(a.of_task(t).start, b.of_task(t).start);
  }
}

std::vector<Param> validity_params() {
  std::vector<Param> params;
  // Every polynomial scheduler crossed with a structurally diverse subset
  // of the datasets (all 16 would make this suite needlessly slow; these
  // six cover trees, chains, fork-join, layered, multi-pipeline, and the
  // large Edge/Fog/Cloud networks).
  const std::vector<std::string> datasets = {"in_trees", "chains",  "blast",
                                             "montage",  "epigenomics", "etl"};
  for (const auto& s : benchmark_scheduler_names()) {
    for (const auto& d : datasets) params.emplace_back(s, d);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulersAllFamilies, SchedulerValidity,
                         ::testing::ValuesIn(validity_params()),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           return std::get<0>(info.param) + "_" + std::get<1>(info.param);
                         });

/// PISA-style instances (tiny chains with near-zero weights) are the other
/// stress regime: zero task costs, epsilon network weights.
class SchedulerOnPisaInstances : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerOnPisaInstances, ValidOnRandomChainInstances) {
  const auto scheduler = make_scheduler(GetParam(), 99);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const Schedule s = scheduler->schedule(inst);
    const auto result = s.validate(inst);
    EXPECT_TRUE(result.ok) << GetParam() << " seed " << seed << ": " << result.message;
  }
}

TEST_P(SchedulerOnPisaInstances, HandlesAllZeroCostGraph) {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 0.0);
  const TaskId b = inst.graph.add_task("b", 0.0);
  inst.graph.add_dependency(a, b, 0.0);
  inst.network = Network(3);
  const auto scheduler = make_scheduler(GetParam(), 1);
  const Schedule s = scheduler->schedule(inst);
  EXPECT_TRUE(s.validate(inst).ok);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST_P(SchedulerOnPisaInstances, HandlesSingleTaskSingleNode) {
  ProblemInstance inst;
  inst.graph.add_task("only", 2.0);
  inst.network = Network(1);
  const auto scheduler = make_scheduler(GetParam(), 1);
  const Schedule s = scheduler->schedule(inst);
  EXPECT_TRUE(s.validate(inst).ok);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST_P(SchedulerOnPisaInstances, HandlesEmptyGraph) {
  ProblemInstance inst;
  inst.network = Network(2);
  const auto scheduler = make_scheduler(GetParam(), 1);
  const Schedule s = scheduler->schedule(inst);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerOnPisaInstances,
                         ::testing::ValuesIn(benchmark_scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace saga
