#include <gtest/gtest.h>

#include <cmath>

#include "core/annealer.hpp"
#include "core/constraints.hpp"
#include "sched/registry.hpp"

namespace saga::pisa {
namespace {

TEST(MakespanRatio, OneOnIdenticalSchedulers) {
  const auto heft = make_scheduler("HEFT");
  const auto inst = random_chain_instance(1);
  EXPECT_DOUBLE_EQ(makespan_ratio(*heft, *heft, inst), 1.0);
}

TEST(MakespanRatio, ZeroOverZeroIsOne) {
  ProblemInstance inst;
  inst.graph.add_task("free", 0.0);
  inst.network = Network(2);
  const auto a = make_scheduler("HEFT");
  const auto b = make_scheduler("MCT");
  EXPECT_DOUBLE_EQ(makespan_ratio(*a, *b, inst), 1.0);
}

TEST(RandomChainInstance, MatchesPaperSectionVI) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto inst = random_chain_instance(seed);
    EXPECT_GE(inst.network.node_count(), 3u);
    EXPECT_LE(inst.network.node_count(), 5u);
    EXPECT_GE(inst.graph.task_count(), 3u);
    EXPECT_LE(inst.graph.task_count(), 5u);
    // Chain: every task has at most one predecessor/successor.
    for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
      EXPECT_LE(inst.graph.successors(t).size(), 1u);
      EXPECT_LE(inst.graph.predecessors(t).size(), 1u);
      EXPECT_LE(inst.graph.cost(t), 1.0);
    }
    EXPECT_EQ(inst.graph.dependency_count(), inst.graph.task_count() - 1);
    for (NodeId v = 0; v < inst.network.node_count(); ++v) {
      EXPECT_LE(inst.network.speed(v), 1.0);
      EXPECT_GT(inst.network.speed(v), 0.0);
    }
  }
}

TEST(Anneal, BestRatioNeverBelowInitial) {
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto initial = random_chain_instance(seed);
    AnnealingParams params;
    params.max_iterations = 200;
    const auto result =
        anneal(*heft, *cpop, initial, PerturbationConfig::generic(), params, seed);
    EXPECT_GE(result.best_ratio, result.initial_ratio);
  }
}

TEST(Anneal, DeterministicForSeed) {
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  const auto initial = random_chain_instance(3);
  AnnealingParams params;
  params.max_iterations = 150;
  const auto a = anneal(*heft, *fn, initial, PerturbationConfig::generic(), params, 77);
  const auto b = anneal(*heft, *fn, initial, PerturbationConfig::generic(), params, 77);
  EXPECT_DOUBLE_EQ(a.best_ratio, b.best_ratio);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_TRUE(a.best_instance.graph.structurally_equal(b.best_instance.graph));
}

TEST(Anneal, StopsAtIterationCap) {
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  AnnealingParams params;
  params.max_iterations = 25;
  const auto result = anneal(*heft, *cpop, random_chain_instance(1),
                             PerturbationConfig::generic(), params, 1);
  EXPECT_EQ(result.iterations, 25u);
}

TEST(Anneal, StopsWhenTemperatureFloorsFirst) {
  // Tmax 10 -> Tmin 0.1 at alpha 0.99 takes ceil(ln(0.01)/ln(0.99)) = 459
  // steps; with Imax 1000 the temperature floor binds.
  const auto mct = make_scheduler("MCT");
  const auto olb = make_scheduler("OLB");
  AnnealingParams params;  // paper defaults
  const auto result = anneal(*mct, *olb, random_chain_instance(2),
                             PerturbationConfig::generic(), params, 2);
  EXPECT_LT(result.iterations, 1000u);
  EXPECT_NEAR(static_cast<double>(result.iterations), 459.0, 2.0);
}

TEST(Anneal, MetropolisRuleAlsoImproves) {
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  AnnealingParams params;
  params.acceptance = AnnealingParams::AcceptanceRule::kMetropolis;
  const auto result = anneal(*heft, *fn, random_chain_instance(4),
                             PerturbationConfig::generic(), params, 4);
  EXPECT_GE(result.best_ratio, result.initial_ratio);
}

TEST(RunPisa, FindsInstanceWhereHeftLosesToFastestNode) {
  // The paper's headline observation: PISA finds instances where HEFT
  // over-parallelises and loses to serialising everything on one node.
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  PisaOptions options;
  options.restarts = 3;
  const auto result = run_pisa(*heft, *fn, options, 99);
  EXPECT_GT(result.best_ratio, 1.05);
  // The witness instance must actually reproduce the ratio.
  EXPECT_NEAR(makespan_ratio(*heft, *fn, result.best_instance), result.best_ratio, 1e-9);
}

TEST(RunPisa, HonoursHomogeneityConstraints) {
  // ETF requires homogeneous speeds; FCP additionally homogeneous links.
  // Any instance PISA produces for this pair must keep both homogeneous.
  const auto etf = make_scheduler("ETF");
  const auto fcp = make_scheduler("FCP");
  PisaOptions options;
  options.restarts = 2;
  options.params.max_iterations = 150;
  const auto result = run_pisa(*etf, *fcp, options, 7);
  EXPECT_TRUE(result.best_instance.network.homogeneous_speeds());
  EXPECT_TRUE(result.best_instance.network.homogeneous_strengths());
  for (NodeId v = 0; v < result.best_instance.network.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(result.best_instance.network.speed(v), 1.0);
  }
}

TEST(RunPisa, CustomInitialFactoryIsUsed) {
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  PisaOptions options;
  options.restarts = 1;
  options.params.max_iterations = 10;
  // Freeze structure so the witness keeps the custom shape.
  options.config.set_enabled(PerturbationOp::kAddDependency, false);
  options.config.set_enabled(PerturbationOp::kRemoveDependency, false);
  options.make_initial = [](std::uint64_t) {
    ProblemInstance inst;
    for (int i = 0; i < 7; ++i) inst.graph.add_task(0.5);
    inst.network = Network(3);
    return inst;
  };
  const auto result = run_pisa(*heft, *cpop, options, 5);
  EXPECT_EQ(result.best_instance.graph.task_count(), 7u);
  EXPECT_EQ(result.best_instance.graph.dependency_count(), 0u);
}

TEST(Constraints, CombineIsUnion) {
  const NetworkRequirements a{.homogeneous_node_speeds = true,
                              .homogeneous_link_strengths = false};
  const NetworkRequirements b{.homogeneous_node_speeds = false,
                              .homogeneous_link_strengths = true};
  const auto c = combine(a, b);
  EXPECT_TRUE(c.homogeneous_node_speeds);
  EXPECT_TRUE(c.homogeneous_link_strengths);
  const auto none = combine({}, {});
  EXPECT_FALSE(none.homogeneous_node_speeds);
  EXPECT_FALSE(none.homogeneous_link_strengths);
}

TEST(Constraints, ApplyRequirementsDisablesOps) {
  PerturbationConfig config;
  apply_requirements(config, {.homogeneous_node_speeds = true,
                              .homogeneous_link_strengths = true});
  EXPECT_FALSE(config.is_enabled(PerturbationOp::kChangeNetworkNodeWeight));
  EXPECT_FALSE(config.is_enabled(PerturbationOp::kChangeNetworkEdgeWeight));
  EXPECT_TRUE(config.is_enabled(PerturbationOp::kChangeTaskWeight));
}

TEST(Constraints, NormalizeSetsUnitWeights) {
  auto inst = random_chain_instance(11);
  normalize_instance(inst, {.homogeneous_node_speeds = true,
                            .homogeneous_link_strengths = true});
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(inst.network.speed(v), 1.0);
  }
  EXPECT_TRUE(inst.network.homogeneous_strengths());
}

TEST(Constraints, NormalizeNoOpWithoutRequirements) {
  const auto before = random_chain_instance(12);
  auto after = before;
  normalize_instance(after, {});
  for (NodeId v = 0; v < before.network.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(after.network.speed(v), before.network.speed(v));
  }
}


TEST(Anneal, TraceRecordsMonotoneBestAndCoolingTemperatures) {
  const auto heft = make_scheduler("HEFT");
  const auto fn = make_scheduler("FastestNode");
  AnnealingParams params;
  params.max_iterations = 120;
  params.record_trace = true;
  const auto result = anneal(*heft, *fn, random_chain_instance(6),
                             PerturbationConfig::generic(), params, 6);
  ASSERT_EQ(result.trace.size(), result.iterations);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].best_ratio, result.trace[i - 1].best_ratio);
    EXPECT_LT(result.trace[i].temperature, result.trace[i - 1].temperature);
    EXPECT_NEAR(result.trace[i].temperature, result.trace[i - 1].temperature * 0.99, 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.trace.back().best_ratio, result.best_ratio);
  EXPECT_DOUBLE_EQ(result.trace.front().temperature, 10.0);
}

TEST(Anneal, TraceEmptyByDefault) {
  const auto mct = make_scheduler("MCT");
  const auto olb = make_scheduler("OLB");
  AnnealingParams params;
  params.max_iterations = 30;
  const auto result = anneal(*mct, *olb, random_chain_instance(7),
                             PerturbationConfig::generic(), params, 7);
  EXPECT_TRUE(result.trace.empty());
}

TEST(Anneal, CurrentRatioNeverExceedsBestInTrace) {
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  AnnealingParams params;
  params.max_iterations = 200;
  params.record_trace = true;
  const auto result = anneal(*heft, *cpop, random_chain_instance(8),
                             PerturbationConfig::generic(), params, 8);
  for (const auto& point : result.trace) {
    EXPECT_LE(point.current_ratio, point.best_ratio + 1e-12);
  }
}

}  // namespace
}  // namespace saga::pisa
