#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/atlas.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"

namespace saga::analysis {
namespace {

AtlasEntry sample_entry() {
  AtlasEntry entry;
  entry.target = "HEFT";
  entry.baseline = "FastestNode";
  entry.instance = pisa::random_chain_instance(5);
  entry.ratio = pisa::makespan_ratio(*make_scheduler("HEFT"),
                                     *make_scheduler("FastestNode"), entry.instance);
  return entry;
}

TEST(AtlasEntry, RoundTripsThroughText) {
  const auto entry = sample_entry();
  const auto copy = atlas_entry_from_string(atlas_entry_to_string(entry));
  EXPECT_EQ(copy.target, entry.target);
  EXPECT_EQ(copy.baseline, entry.baseline);
  EXPECT_DOUBLE_EQ(copy.ratio, entry.ratio);
  EXPECT_TRUE(copy.instance.graph.structurally_equal(entry.instance.graph));
}

TEST(AtlasEntry, RejectsMissingMagic) {
  EXPECT_THROW((void)atlas_entry_from_string("saga-instance v1\ntasks 0\n"),
               std::runtime_error);
}

TEST(AtlasEntry, RejectsMissingHeaders) {
  const std::string text = "# atlas-entry v1\nsaga-instance v1\ntasks 0\ndeps 0\nnodes 1\nnode 0 1\nlinks 0\n";
  EXPECT_THROW((void)atlas_entry_from_string(text), std::runtime_error);
}

TEST(Atlas, AddReplacesSamePair) {
  Atlas atlas;
  auto entry = sample_entry();
  atlas.add(entry);
  entry.ratio = 99.0;
  atlas.add(entry);
  EXPECT_EQ(atlas.size(), 1u);
  EXPECT_DOUBLE_EQ(atlas.find("HEFT", "FastestNode")->ratio, 99.0);
}

TEST(Atlas, FindDistinguishesDirections) {
  Atlas atlas;
  auto forward = sample_entry();
  atlas.add(forward);
  EXPECT_NE(atlas.find("HEFT", "FastestNode"), nullptr);
  EXPECT_EQ(atlas.find("FastestNode", "HEFT"), nullptr);
  EXPECT_EQ(atlas.find("CPoP", "HEFT"), nullptr);
}

TEST(Atlas, SaveLoadRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "saga_atlas_test";
  std::filesystem::remove_all(dir);

  Atlas atlas;
  atlas.add(sample_entry());
  auto second = sample_entry();
  second.target = "CPoP";
  second.ratio = 2.5;
  atlas.add(second);
  const auto files = atlas.save(dir);
  EXPECT_EQ(files.size(), 2u);

  const Atlas loaded = Atlas::load(dir);
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_NE(loaded.find("CPoP", "FastestNode"), nullptr);
  EXPECT_DOUBLE_EQ(loaded.find("CPoP", "FastestNode")->ratio, 2.5);
  std::filesystem::remove_all(dir);
}

TEST(Atlas, VerifyPassesOnHonestEntries) {
  Atlas atlas;
  atlas.add(sample_entry());
  EXPECT_TRUE(atlas.verify(1e-9).empty());
}

TEST(Atlas, VerifyFlagsTamperedRatios) {
  Atlas atlas;
  auto entry = sample_entry();
  entry.ratio *= 2.0;  // lie about the ratio
  atlas.add(entry);
  const auto mismatches = atlas.verify(1e-6);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_NE(mismatches[0].find("HEFT vs FastestNode"), std::string::npos);
}

TEST(Atlas, LoadRejectsCorruptFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "saga_atlas_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir / "bad.saga");
    out << "garbage\n";
  }
  EXPECT_THROW((void)Atlas::load(dir), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Atlas, LoadIgnoresNonSagaFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "saga_atlas_mixed";
  std::filesystem::remove_all(dir);
  Atlas atlas;
  atlas.add(sample_entry());
  atlas.save(dir);
  {
    std::ofstream out(dir / "README.txt");
    out << "not an instance\n";
  }
  EXPECT_EQ(Atlas::load(dir).size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace saga::analysis
