// Golden-makespan regression suite: pins the exact makespan of every
// registered scheduler on fixed seeded instances (the Fig. 1 worked
// example, a PISA chain instance, a Chameleon-network workflow, and two
// scientific-workflow dataset instances). The table in
// golden_makespans.inc was generated from the pre-kernel implementation
// (PR 1 seed) at full double precision, so these tests prove the shared
// evaluation kernel — InstanceView, data-ready memoization, binary-search
// gap lookup, arena reuse — is behaviour-preserving bit for bit. They also
// run every scheduler through both entry points (with and without a
// TimelineArena, reusing one arena across all schedulers) and require
// identical schedules from each.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include <algorithm>
#include <cctype>

#include "core/annealer.hpp"
#include "datasets/chameleon.hpp"
#include "datasets/registry.hpp"
#include "graph/problem_instance.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/spec.hpp"

namespace {

using namespace saga;

struct GoldenEntry {
  const char* fixture;
  const char* scheduler;
  double makespan;
};

constexpr GoldenEntry kGolden[] = {
#include "golden_makespans.inc"
};

const ProblemInstance& fixture(const std::string& name) {
  static const std::map<std::string, ProblemInstance> fixtures = [] {
    std::map<std::string, ProblemInstance> out;
    out.emplace("fig1", fig1_instance());
    out.emplace("chain7", pisa::random_chain_instance(7));
    ProblemInstance chameleon = datasets::generate_instance("blast", 42, 0);
    chameleon.network = datasets::chameleon_network(derive_seed(42, {0xc4a3ULL}));
    out.emplace("chameleon_blast", std::move(chameleon));
    out.emplace("blast0", datasets::generate_instance("blast", 42, 0));
    out.emplace("montage0", datasets::generate_instance("montage", 42, 0));
    return out;
  }();
  return fixtures.at(name);
}

TEST(GoldenMakespans, TableCoversEveryRegisteredScheduler) {
  std::map<std::string, int> covered;
  for (const auto& entry : kGolden) ++covered[entry.scheduler];
  for (const auto& name : all_scheduler_names()) {
    EXPECT_TRUE(covered.contains(name)) << name << " missing from the golden table";
  }
  for (const auto& name : extension_scheduler_names()) {
    EXPECT_TRUE(covered.contains(name)) << name << " missing from the golden table";
  }
}

TEST(GoldenMakespans, BitIdenticalWithoutArena) {
  for (const auto& entry : kGolden) {
    const auto& inst = fixture(entry.fixture);
    const Schedule schedule = make_scheduler(entry.scheduler)->schedule(inst);
    EXPECT_EQ(schedule.makespan(), entry.makespan)
        << entry.scheduler << " on " << entry.fixture;
    EXPECT_TRUE(schedule.validate(inst).ok) << entry.scheduler << " on " << entry.fixture;
  }
}

TEST(GoldenMakespans, BitIdenticalWithSharedArena) {
  // One arena across every (scheduler, fixture) combination: the view is
  // re-synced between fixtures and the scratch pool is recycled throughout,
  // exactly the PISA usage pattern.
  TimelineArena arena;
  for (const auto& entry : kGolden) {
    const auto& inst = fixture(entry.fixture);
    const Schedule schedule = make_scheduler(entry.scheduler)->schedule(inst, &arena);
    EXPECT_EQ(schedule.makespan(), entry.makespan)
        << entry.scheduler << " on " << entry.fixture << " (arena path)";
  }
}

TEST(GoldenMakespans, RegistrySpecConstructionIsBitIdentical) {
  // Every golden pin must also hold for schedulers constructed through the
  // descriptor registry's spec path — lowercase spec strings resolved via
  // case-insensitive lookup, the explicit default seed spelled as a spec
  // parameter for the randomized ones.
  const auto& registry = SchedulerRegistry::instance();
  for (const auto& entry : kGolden) {
    const auto& inst = fixture(entry.fixture);
    std::string spec_string = entry.scheduler;
    std::transform(spec_string.begin(), spec_string.end(), spec_string.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (registry.resolve(entry.scheduler).randomized) spec_string += "?seed=1516896257";
    const Schedule schedule =
        registry.make(parse_scheduler_spec(spec_string), 0x5a6a0001ULL)->schedule(inst);
    EXPECT_EQ(schedule.makespan(), entry.makespan)
        << spec_string << " on " << entry.fixture << " (registry spec path)";
  }
}

TEST(GoldenMakespans, ArenaAndOneShotSchedulesAgreeAssignmentByAssignment) {
  TimelineArena arena;
  for (const auto& name : benchmark_scheduler_names()) {
    const auto& inst = fixture("blast0");
    const auto scheduler = make_scheduler(name);
    const Schedule one_shot = scheduler->schedule(inst);
    const Schedule pooled = scheduler->schedule(inst, &arena);
    ASSERT_EQ(one_shot.size(), pooled.size()) << name;
    for (const auto& a : one_shot.assignments()) {
      const auto& b = pooled.of_task(a.task);
      EXPECT_EQ(a.node, b.node) << name << " task " << a.task;
      EXPECT_EQ(a.start, b.start) << name << " task " << a.task;
      EXPECT_EQ(a.finish, b.finish) << name << " task " << a.task;
    }
  }
}

}  // namespace
