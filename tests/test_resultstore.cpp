// The result store and the shard/merge/resume equivalence pins — the
// acceptance contract of the sharded executor: for benchmark (fig02-tiny
// shaped), pisa-pairwise (fig04-small shaped) and schedule specs,
//
//   monolithic run ≡ merge(shard 1/N .. N/N) ≡ interrupted-then-resumed run
//
// byte for byte across the CSV and JSON artifacts, for every shard count
// 1..4. Plus: crash recovery from a torn JSONL record, loud merge failures
// (missing cells, spec-hash mismatch, conflicting duplicates), and the
// regression test for `threads` being silently ignored in schedule mode.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "exp/cells.hpp"
#include "exp/experiment.hpp"
#include "exp/resultstore.hpp"

namespace {

namespace fs = std::filesystem;
using namespace saga;
using exp::CellPlan;
using exp::ExperimentSpec;
using exp::Mode;
using exp::ResultStore;
using exp::RunOptions;

/// Fresh scratch directory under the test temp dir.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("resultstore_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// fig02-tiny shaped: two small datasets, three schedulers.
ExperimentSpec benchmark_spec() {
  ExperimentSpec spec;
  spec.name = "equivalence-benchmark";
  spec.mode = Mode::kBenchmark;
  spec.schedulers = {"HEFT", "CPoP", "MinMin"};
  spec.datasets = {{"blast", 3}, {"montage?n=10&ccr=1", 3}};
  spec.seed = 42;
  return spec;
}

/// fig04-small shaped: 3-scheduler PISA grid, quick settings.
ExperimentSpec pisa_spec() {
  ExperimentSpec spec;
  spec.name = "equivalence-pisa";
  spec.mode = Mode::kPisaPairwise;
  spec.schedulers = {"CPoP", "FastestNode", "HEFT"};
  spec.pisa.restarts = 1;
  spec.pisa.max_iterations = 40;
  spec.seed = 42;
  return spec;
}

ExperimentSpec schedule_spec() {
  ExperimentSpec spec;
  spec.name = "equivalence-schedule";
  spec.mode = Mode::kSchedule;
  spec.schedulers = {"HEFT", "CPoP", "MinMin", "wba?tolerance=0.25"};
  spec.instance.dataset = "blast";
  spec.seed = 42;
  return spec;
}

struct Artifacts {
  std::string csv;
  std::string json;
};

/// Runs the spec monolithically with csv/json sinks under `dir`.
Artifacts run_monolithic(ExperimentSpec spec, const fs::path& dir,
                         const RunOptions& options = {}) {
  fs::create_directories(dir);
  spec.csv = (dir / "out.csv").string();
  spec.json = (dir / "out.json").string();
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink, options);
  EXPECT_TRUE(result.stats.complete);
  return {slurp(dir / "out.csv"), slurp(dir / "out.json")};
}

/// Runs the spec as N shards into per-shard stores; returns the store dirs.
std::vector<fs::path> run_shards(const ExperimentSpec& spec, const fs::path& dir,
                                 std::size_t shards) {
  std::vector<fs::path> stores;
  for (std::size_t i = 1; i <= shards; ++i) {
    RunOptions options;
    options.shard_index = i;
    options.shard_count = shards;
    options.out_dir = (dir / ("store_" + std::to_string(i))).string();
    std::ostringstream sink;
    const auto result = exp::run_experiment(spec, sink, options);
    EXPECT_EQ(result.stats.complete, shards == 1);
    stores.emplace_back(options.out_dir);
  }
  return stores;
}

/// Merges stores and emits csv/json artifacts under `dir`.
Artifacts merge_to_artifacts(const std::vector<fs::path>& stores, const fs::path& dir) {
  fs::create_directories(dir);
  auto merged = exp::merge_stores(stores);
  merged.spec.csv = (dir / "merged.csv").string();
  merged.spec.json = (dir / "merged.json").string();
  std::ostringstream sink;
  exp::emit_result(merged.spec, merged.result, sink);
  return {slurp(dir / "merged.csv"), slurp(dir / "merged.json")};
}

class ShardMergeEquivalence : public testing::TestWithParam<const char*> {};

ExperimentSpec spec_for(const std::string& which) {
  if (which == "benchmark") return benchmark_spec();
  if (which == "pisa") return pisa_spec();
  return schedule_spec();
}

TEST_P(ShardMergeEquivalence, MergeOfAnyShardCountMatchesMonolithicByteForByte) {
  const std::string which = GetParam();
  const fs::path dir = scratch("equiv_" + which);
  const Artifacts golden = run_monolithic(spec_for(which), dir / "mono");

  for (std::size_t shards = 1; shards <= 4; ++shards) {
    const fs::path shard_dir = dir / ("n" + std::to_string(shards));
    const auto stores = run_shards(spec_for(which), shard_dir, shards);
    const Artifacts merged = merge_to_artifacts(stores, shard_dir);
    EXPECT_EQ(merged.csv, golden.csv) << which << " csv, " << shards << " shards";
    EXPECT_EQ(merged.json, golden.json) << which << " json, " << shards << " shards";
  }
}

TEST_P(ShardMergeEquivalence, InterruptedRunResumesToTheMonolithicArtifacts) {
  const std::string which = GetParam();
  const fs::path dir = scratch("resume_" + which);
  const Artifacts golden = run_monolithic(spec_for(which), dir / "mono");

  // "Interrupt" a run by executing only shard 1/2 into the store, then
  // resume the full grid against the same store.
  const fs::path store_dir = dir / "store";
  {
    RunOptions options;
    options.shard_index = 1;
    options.shard_count = 2;
    options.out_dir = store_dir.string();
    std::ostringstream sink;
    const auto partial = exp::run_experiment(spec_for(which), sink, options);
    EXPECT_FALSE(partial.stats.complete);
  }
  ExperimentSpec spec = spec_for(which);
  spec.csv = (dir / "resumed.csv").string();
  spec.json = (dir / "resumed.json").string();
  RunOptions options;
  options.out_dir = store_dir.string();
  options.resume = true;
  std::ostringstream sink;
  const auto resumed = exp::run_experiment(spec, sink, options);
  EXPECT_TRUE(resumed.stats.complete);
  EXPECT_GT(resumed.stats.reused, 0u);
  EXPECT_GT(resumed.stats.executed, 0u);
  EXPECT_EQ(resumed.stats.reused + resumed.stats.executed, resumed.stats.total_cells);
  EXPECT_EQ(slurp(dir / "resumed.csv"), golden.csv);
  EXPECT_EQ(slurp(dir / "resumed.json"), golden.json);

  // A second resume finds everything done and still emits the artifacts.
  std::ostringstream sink2;
  const auto again = exp::run_experiment(spec, sink2, options);
  EXPECT_EQ(again.stats.executed, 0u);
  EXPECT_EQ(again.stats.reused, again.stats.total_cells);
  EXPECT_EQ(slurp(dir / "resumed.csv"), golden.csv);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ShardMergeEquivalence,
                         testing::Values("benchmark", "pisa", "schedule"));

TEST(ResultStoreCrashRecovery, TornRecordIsDetectedAndOnlyThatCellReRuns) {
  const fs::path dir = scratch("torn");
  const Artifacts golden = run_monolithic(benchmark_spec(), dir / "mono");

  const fs::path store_dir = dir / "store";
  RunOptions options;
  options.out_dir = store_dir.string();
  {
    std::ostringstream sink;
    (void)exp::run_experiment(benchmark_spec(), sink, options);
  }
  // Tear the record for cell 2 mid-write: drop its trailing bytes.
  const fs::path victim = store_dir / "cells" / "c00000002.jsonl";
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, fs::file_size(victim) - 9);

  ExperimentSpec spec = benchmark_spec();
  spec.csv = (dir / "recovered.csv").string();
  spec.json = (dir / "recovered.json").string();
  options.resume = true;
  std::ostringstream sink;
  const auto recovered = exp::run_experiment(spec, sink, options);
  EXPECT_EQ(recovered.stats.torn, 1u);
  EXPECT_EQ(recovered.stats.executed, 1u) << "only the torn cell re-runs";
  EXPECT_EQ(recovered.stats.reused, recovered.stats.total_cells - 1);
  EXPECT_EQ(slurp(dir / "recovered.csv"), golden.csv);
  EXPECT_EQ(slurp(dir / "recovered.json"), golden.json);

  // The repaired store now merges cleanly to the same artifacts.
  const Artifacts merged = merge_to_artifacts({store_dir}, dir);
  EXPECT_EQ(merged.csv, golden.csv);
  EXPECT_EQ(merged.json, golden.json);
}

TEST(ResultStoreMerge, FailsLoudlyOnMissingCellsAndTornRecords) {
  const fs::path dir = scratch("missing");
  const auto stores = run_shards(benchmark_spec(), dir, 3);
  try {
    (void)exp::merge_stores({stores[0]});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cells missing"), std::string::npos) << what;
    EXPECT_NE(what.find("bench:"), std::string::npos) << "names a missing cell: " << what;
  }

  // A torn record whose cell no other store covers counts as missing and is
  // called out by path.
  const fs::path victim = stores[0] / "cells" / "c00000000.jsonl";
  ASSERT_TRUE(fs::exists(victim));
  fs::resize_file(victim, fs::file_size(victim) - 5);
  try {
    (void)exp::merge_stores(stores);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos) << e.what();
  }
}

TEST(ResultStoreMerge, RefusesSpecHashMismatchesAndConflictingDuplicates) {
  const fs::path dir = scratch("conflicts");
  const auto stores_a = run_shards(benchmark_spec(), dir / "a", 2);
  ExperimentSpec other = benchmark_spec();
  other.seed = 7;
  std::ostringstream sink;
  RunOptions options;
  options.shard_index = 2;
  options.shard_count = 2;
  options.out_dir = (dir / "b").string();
  (void)exp::run_experiment(other, sink, options);
  try {
    (void)exp::merge_stores({stores_a[0], dir / "b"});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("spec hash"), std::string::npos) << e.what();
  }

  // Conflicting duplicate: same cell, tampered payload.
  const ExperimentSpec spec = benchmark_spec();
  const CellPlan plan = exp::enumerate_cells(spec);
  const std::string hash = exp::plan_hash_hex(spec, plan);
  ResultStore tampered(stores_a[1]);
  auto scan = tampered.scan(plan, hash);
  ASSERT_FALSE(scan.records.empty());
  auto record = scan.records.begin()->second;
  record.payload.set("makespans", exp::Json::array({exp::Json::number(1.0),
                                                    exp::Json::number(2.0),
                                                    exp::Json::number(3.0)}));
  const fs::path copy_dir = dir / "tampered";
  ResultStore copy(copy_dir);
  copy.initialize(exp::frozen_spec(spec, plan), hash);
  copy.write_cell(record);
  try {
    (void)exp::merge_stores({stores_a[0], stores_a[1], copy_dir});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("differs between stores"), std::string::npos)
        << e.what();
  }
}

TEST(ResultStore, RefusesToResumeADifferentExperiment) {
  const fs::path dir = scratch("wrong_resume");
  RunOptions options;
  options.out_dir = (dir / "store").string();
  std::ostringstream sink;
  (void)exp::run_experiment(benchmark_spec(), sink, options);

  ExperimentSpec other = benchmark_spec();
  other.seed = 99;
  options.resume = true;
  EXPECT_THROW((void)exp::run_experiment(other, sink, options), std::runtime_error);
}

TEST(ResultStore, StoredSpecIsItselfRunnable) {
  const fs::path dir = scratch("spec_roundtrip");
  RunOptions options;
  options.out_dir = (dir / "store").string();
  std::ostringstream sink;
  (void)exp::run_experiment(benchmark_spec(), sink, options);
  const auto reloaded = ExperimentSpec::load((dir / "store" / "spec.json").string());
  reloaded.validate();
  EXPECT_EQ(reloaded.name, benchmark_spec().name);
  // The frozen spec re-enumerates to the same plan hash.
  EXPECT_EQ(exp::plan_hash_hex(reloaded, exp::enumerate_cells(reloaded)),
            exp::plan_hash_hex(benchmark_spec(), exp::enumerate_cells(benchmark_spec())));
}

TEST(ScheduleModeThreads, RegressionThreadsAreNoLongerIgnored) {
  // ExperimentSpec::threads used to be silently ignored in schedule mode
  // (the scheduler loop ran inline on the caller thread). The cell executor
  // now drives schedule cells through the worker pool: with an explicit
  // pool, at least one lane job must reach it, and the results must stay
  // bit-identical to the serial run.
  ExperimentSpec spec = schedule_spec();
  std::ostringstream sink;

  ThreadPool pool(2);
  const std::size_t jobs_before = pool.jobs_completed();
  RunOptions options;
  options.pool = &pool;
  const auto pooled = exp::run_experiment(spec, sink, options);
  EXPECT_GT(pool.jobs_completed(), jobs_before)
      << "schedule-mode cells never reached the worker pool";

  spec.parallel = false;
  const auto serial = exp::run_experiment(spec, sink);
  ASSERT_EQ(pooled.schedules.size(), serial.schedules.size());
  for (std::size_t i = 0; i < pooled.schedules.size(); ++i) {
    EXPECT_EQ(pooled.schedules[i].scheduler, serial.schedules[i].scheduler);
    EXPECT_EQ(pooled.schedules[i].makespan, serial.schedules[i].makespan);
  }

  // spec.threads now routes schedule mode onto a local pool as well —
  // results identical again.
  spec.parallel = true;
  spec.threads = 3;
  const auto threaded = exp::run_experiment(spec, sink);
  for (std::size_t i = 0; i < threaded.schedules.size(); ++i) {
    EXPECT_EQ(threaded.schedules[i].makespan, serial.schedules[i].makespan);
  }
}

TEST(RunOptionsValidation, RejectsInvalidShardAndSinklessPartialRuns) {
  const ExperimentSpec spec = benchmark_spec();
  std::ostringstream sink;
  RunOptions bad;
  bad.shard_index = 0;
  EXPECT_THROW((void)exp::run_experiment(spec, sink, bad), std::invalid_argument);
  bad.shard_index = 3;
  bad.shard_count = 2;
  EXPECT_THROW((void)exp::run_experiment(spec, sink, bad), std::invalid_argument);
  RunOptions sinkless;
  sinkless.shard_index = 1;
  sinkless.shard_count = 2;  // no out_dir
  EXPECT_THROW((void)exp::run_experiment(spec, sink, sinkless), std::invalid_argument);
  RunOptions resume_only;
  resume_only.resume = true;  // no out_dir
  EXPECT_THROW((void)exp::run_experiment(spec, sink, resume_only), std::invalid_argument);
}

}  // namespace
