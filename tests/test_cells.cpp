// Cell enumeration and sharding: every (mode, spec) must decompose into a
// stable, deterministic work-cell list whose global indices never depend on
// the shard count, and whose round-robin shards form a true partition
// (disjoint and covering) for every N. The plan hash must fingerprint
// exactly the result-affecting fields — execution knobs and sinks excluded.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "exp/cells.hpp"
#include "exp/experiment.hpp"

namespace {

using namespace saga;
using exp::CellPlan;
using exp::ExperimentSpec;
using exp::Mode;
using exp::Shard;

ExperimentSpec benchmark_spec() {
  ExperimentSpec spec;
  spec.mode = Mode::kBenchmark;
  spec.schedulers = {"HEFT", "CPoP"};
  spec.datasets = {{"blast", 3}, {"chains", 2}, {"blast", 2}};  // duplicate name on purpose
  spec.seed = 42;
  return spec;
}

ExperimentSpec pisa_spec() {
  ExperimentSpec spec;
  spec.mode = Mode::kPisaPairwise;
  spec.schedulers = {"HEFT", "CPoP", "MinMin"};
  spec.seed = 42;
  return spec;
}

ExperimentSpec schedule_spec() {
  ExperimentSpec spec;
  spec.mode = Mode::kSchedule;
  spec.schedulers = {"HEFT", "CPoP", "MinMin", "MaxMin"};
  spec.instance.dataset = "blast";
  spec.seed = 42;
  return spec;
}

/// The partition property: for every shard count N, each cell is owned by
/// exactly one shard, and the shards together cover the whole grid.
void expect_partition(const CellPlan& plan) {
  for (std::size_t n = 1; n <= 8; ++n) {
    std::vector<std::size_t> owners(plan.cells.size(), 0);
    for (std::size_t i = 1; i <= n; ++i) {
      const Shard shard{i, n};
      for (const auto& cell : plan.cells) {
        if (shard.owns(cell.index)) ++owners[cell.index];
      }
    }
    for (std::size_t c = 0; c < owners.size(); ++c) {
      EXPECT_EQ(owners[c], 1u) << "cell " << c << " with " << n << " shards";
    }
  }
}

TEST(CellEnumeration, BenchmarkFlattensDatasetsInOrder) {
  const CellPlan plan = exp::enumerate_cells(benchmark_spec());
  ASSERT_EQ(plan.cells.size(), 7u);  // 3 + 2 + 2
  ASSERT_EQ(plan.dataset_counts, (std::vector<std::size_t>{3, 2, 2}));
  ASSERT_EQ(plan.sources.size(), 3u);
  std::set<std::string> keys;
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    EXPECT_EQ(plan.cells[c].index, c);  // global index == enumeration position
    keys.insert(plan.cells[c].key);
  }
  EXPECT_EQ(keys.size(), plan.cells.size()) << "cell keys must be unique";
  // Dataset-major, instance-minor, in spec order.
  EXPECT_EQ(plan.cells[0].dataset, 0u);
  EXPECT_EQ(plan.cells[0].instance, 0u);
  EXPECT_EQ(plan.cells[2].instance, 2u);
  EXPECT_EQ(plan.cells[3].dataset, 1u);
  EXPECT_EQ(plan.cells[3].instance, 0u);
  EXPECT_EQ(plan.cells[5].dataset, 2u);
}

TEST(CellEnumeration, PisaMatchesThePairwiseWorkListOrder) {
  const CellPlan plan = exp::enumerate_cells(pisa_spec());
  const std::size_t n = 3;
  ASSERT_EQ(plan.cells.size(), n * (n - 1));
  std::size_t c = 0;
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t col = 0; col < n; ++col) {
      if (row == col) continue;
      EXPECT_EQ(plan.cells[c].row, row);
      EXPECT_EQ(plan.cells[c].col, col);
      EXPECT_EQ(plan.cells[c].index, c);
      ++c;
    }
  }
}

TEST(CellEnumeration, ScheduleYieldsOneCellPerRosterEntry) {
  const CellPlan plan = exp::enumerate_cells(schedule_spec());
  ASSERT_EQ(plan.cells.size(), 4u);
  for (std::size_t c = 0; c < plan.cells.size(); ++c) {
    EXPECT_EQ(plan.cells[c].scheduler, c);
  }
}

TEST(CellEnumeration, StableUnderReenumeration) {
  for (const auto& spec : {benchmark_spec(), pisa_spec(), schedule_spec()}) {
    const CellPlan a = exp::enumerate_cells(spec);
    const CellPlan b = exp::enumerate_cells(spec);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t c = 0; c < a.cells.size(); ++c) {
      EXPECT_EQ(a.cells[c].key, b.cells[c].key);
      EXPECT_EQ(a.cells[c].index, b.cells[c].index);
    }
    EXPECT_EQ(exp::plan_hash_hex(spec, a), exp::plan_hash_hex(spec, b));
  }
}

TEST(CellEnumeration, ShardsPartitionEveryMode) {
  expect_partition(exp::enumerate_cells(benchmark_spec()));
  expect_partition(exp::enumerate_cells(pisa_spec()));
  expect_partition(exp::enumerate_cells(schedule_spec()));
}

TEST(CellEnumeration, FuzzedBenchmarkSpecsKeepThePartitionInvariants) {
  Rng rng(20260729);
  const std::vector<std::string> names = {"blast", "chains", "montage?n=10&ccr=1",
                                          "in_trees"};
  for (int round = 0; round < 25; ++round) {
    ExperimentSpec spec;
    spec.mode = Mode::kBenchmark;
    spec.schedulers = {"HEFT", "CPoP"};
    spec.seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
    const std::size_t n_datasets = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t d = 0; d < n_datasets; ++d) {
      spec.datasets.push_back({names[rng.index(names.size())],
                               static_cast<std::size_t>(rng.uniform_int(1, 9))});
    }
    const CellPlan plan = exp::enumerate_cells(spec);
    std::size_t expected = 0;
    for (const auto& selection : spec.datasets) expected += selection.count;
    ASSERT_EQ(plan.cells.size(), expected);
    std::set<std::string> keys;
    for (const auto& cell : plan.cells) keys.insert(cell.key);
    EXPECT_EQ(keys.size(), plan.cells.size());
    expect_partition(plan);
  }
}

TEST(PlanHash, CoversResultAffectingFieldsOnly) {
  const ExperimentSpec base = benchmark_spec();
  const std::string base_hash = exp::plan_hash_hex(base, exp::enumerate_cells(base));

  // Execution knobs and sinks must not change the hash: shards run with
  // different thread counts / sink paths still merge.
  ExperimentSpec tweaked = base;
  tweaked.parallel = false;
  tweaked.threads = 7;
  tweaked.csv = "a.csv";
  tweaked.json = "b.json";
  EXPECT_EQ(exp::plan_hash_hex(tweaked, exp::enumerate_cells(tweaked)), base_hash);

  ExperimentSpec seeded = base;
  seeded.seed = 43;
  EXPECT_NE(exp::plan_hash_hex(seeded, exp::enumerate_cells(seeded)), base_hash);

  ExperimentSpec counted = base;
  counted.datasets[0].count = 4;
  EXPECT_NE(exp::plan_hash_hex(counted, exp::enumerate_cells(counted)), base_hash);

  ExperimentSpec rostered = base;
  rostered.schedulers.push_back("MinMin");
  EXPECT_NE(exp::plan_hash_hex(rostered, exp::enumerate_cells(rostered)), base_hash);

  // The name titles the artifacts, so it is result-affecting too.
  ExperimentSpec renamed = base;
  renamed.name = "other";
  EXPECT_NE(exp::plan_hash_hex(renamed, exp::enumerate_cells(renamed)), base_hash);
}

TEST(PlanHash, FrozenSpecPinsEffectiveCounts) {
  ExperimentSpec spec = benchmark_spec();
  spec.datasets[1].count = 0;  // natural count scaled by SAGA_SCALE
  const CellPlan plan = exp::enumerate_cells(spec);
  const ExperimentSpec frozen = exp::frozen_spec(spec, plan);
  EXPECT_GT(frozen.datasets[1].count, 0u);
  EXPECT_EQ(frozen.datasets[1].count, plan.dataset_counts[1]);
  // Freezing is idempotent and hash-preserving.
  const CellPlan refrozen = exp::enumerate_cells(frozen);
  EXPECT_EQ(exp::plan_hash_hex(frozen, refrozen), exp::plan_hash_hex(spec, plan));
}

TEST(ShardParse, AcceptsWellFormedAndRejectsTheRest) {
  const Shard shard = exp::parse_shard("2/3");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 3u);
  EXPECT_EQ(exp::parse_shard("1/1").count, 1u);
  for (const char* bad : {"", "3", "0/3", "4/3", "1/0", "a/b", "1/3x", " 1/3", "-1/3", "1//3"}) {
    EXPECT_THROW((void)exp::parse_shard(bad), std::invalid_argument) << "'" << bad << "'";
  }
}

}  // namespace
