#include <gtest/gtest.h>

#include "datasets/random_graphs.hpp"

namespace saga {
namespace {

TEST(RandomNetwork, NodeCountInRange) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Network net = random_network(seed);
    EXPECT_GE(net.node_count(), 3u);
    EXPECT_LE(net.node_count(), 5u);
  }
}

TEST(RandomNetwork, WeightsWithinClippedGaussianRange) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Network net = random_network(seed);
    for (NodeId v = 0; v < net.node_count(); ++v) {
      EXPECT_GT(net.speed(v), 0.0);
      EXPECT_LE(net.speed(v), 2.0);
    }
    for (NodeId a = 0; a < net.node_count(); ++a) {
      for (NodeId b = a + 1; b < net.node_count(); ++b) {
        EXPECT_GT(net.strength(a, b), 0.0);
        EXPECT_LE(net.strength(a, b), 2.0);
      }
    }
  }
}

TEST(RandomNetwork, DeterministicInSeed) {
  const Network a = random_network(42);
  const Network b = random_network(42);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId v = 0; v < a.node_count(); ++v) EXPECT_EQ(a.speed(v), b.speed(v));
}

TEST(InTree, EveryTaskHasAtMostOneSuccessor) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TaskGraph g = random_in_tree(seed);
    for (TaskId t = 0; t < g.task_count(); ++t) {
      EXPECT_LE(g.successors(t).size(), 1u) << "seed " << seed;
    }
    EXPECT_EQ(g.sinks().size(), 1u);  // single root
  }
}

TEST(InTree, SizeMatchesLevelsAndBranching) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TaskGraph g = random_in_tree(seed);
    // 2-4 levels with branching 2-3: sizes between 1+2=3 and 1+3+9+27=40.
    EXPECT_GE(g.task_count(), 3u);
    EXPECT_LE(g.task_count(), 40u);
    EXPECT_EQ(g.dependency_count(), g.task_count() - 1);  // tree
  }
}

TEST(OutTree, EveryTaskHasAtMostOnePredecessor) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TaskGraph g = random_out_tree(seed);
    for (TaskId t = 0; t < g.task_count(); ++t) {
      EXPECT_LE(g.predecessors(t).size(), 1u) << "seed " << seed;
    }
    EXPECT_EQ(g.sources().size(), 1u);  // single root
  }
}

TEST(OutTree, MirrorsInTreeShape) {
  // Same seed: the out-tree has the same size as the in-tree (same level
  // and branching draws) with edges reversed in aggregate.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    EXPECT_EQ(random_in_tree(seed).task_count(), random_out_tree(seed).task_count());
  }
}

TEST(ParallelChains, DegreesAtMostOneBothWays) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TaskGraph g = random_parallel_chains(seed);
    for (TaskId t = 0; t < g.task_count(); ++t) {
      EXPECT_LE(g.successors(t).size(), 1u);
      EXPECT_LE(g.predecessors(t).size(), 1u);
    }
  }
}

TEST(ParallelChains, ChainAndLengthCountsInRange) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const TaskGraph g = random_parallel_chains(seed);
    const std::size_t chains = g.sources().size();
    EXPECT_GE(chains, 2u);
    EXPECT_LE(chains, 5u);
    EXPECT_GE(g.task_count(), 2u * chains);
    EXPECT_LE(g.task_count(), 5u * chains);
    // All chains have equal length (single length draw).
    EXPECT_EQ(g.task_count() % chains, 0u);
  }
}

TEST(ParallelChains, TaskWeightsWithinRange) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const TaskGraph g = random_parallel_chains(seed);
    for (TaskId t = 0; t < g.task_count(); ++t) {
      EXPECT_GE(g.cost(t), 0.0);
      EXPECT_LE(g.cost(t), 2.0);
    }
    for (const auto& [from, to] : g.dependencies()) {
      EXPECT_GE(g.dependency_cost(from, to), 0.0);
      EXPECT_LE(g.dependency_cost(from, to), 2.0);
    }
  }
}

TEST(Instances, DeterministicAndSeedSensitive) {
  const auto a1 = in_trees_instance(9);
  const auto a2 = in_trees_instance(9);
  EXPECT_TRUE(a1.graph.structurally_equal(a2.graph));
  const auto b = in_trees_instance(10);
  // Different seeds draw different weights (equality would require dozens
  // of identical continuous samples).
  EXPECT_FALSE(a1.graph.structurally_equal(b.graph));
}

}  // namespace
}  // namespace saga
