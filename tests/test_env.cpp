#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"

namespace saga {
namespace {

TEST(Env, ScaleDefaultsWhenUnset) {
  unsetenv("SAGA_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 0.25);
}

TEST(Env, ScaleReadsAndClamps) {
  setenv("SAGA_SCALE", "1.0", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  setenv("SAGA_SCALE", "1000", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 100.0);
  setenv("SAGA_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.001);
  setenv("SAGA_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.25);
  unsetenv("SAGA_SCALE");
}

TEST(Env, SeedDefaultsTo42) {
  unsetenv("SAGA_SEED");
  EXPECT_EQ(env_seed(), 42u);
  setenv("SAGA_SEED", "12345", 1);
  EXPECT_EQ(env_seed(), 12345u);
  unsetenv("SAGA_SEED");
}

TEST(Env, ScaledCountAppliesScaleWithFloor) {
  setenv("SAGA_SCALE", "0.1", 1);
  EXPECT_EQ(scaled_count(1000), 100u);
  EXPECT_EQ(scaled_count(10), 4u);   // floor of 4
  EXPECT_EQ(scaled_count(2), 2u);    // floor capped at paper count
  setenv("SAGA_SCALE", "1.0", 1);
  EXPECT_EQ(scaled_count(1000), 1000u);
  unsetenv("SAGA_SCALE");
}

TEST(Env, ThreadsDefaultsToZero) {
  unsetenv("SAGA_THREADS");
  EXPECT_EQ(env_threads(), 0u);
}

}  // namespace
}  // namespace saga
