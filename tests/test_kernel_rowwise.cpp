#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/annealer.hpp"
#include "core/perturbation.hpp"
#include "graph/instance_view.hpp"
#include "sched/arena.hpp"
#include "sched/registry.hpp"
#include "sched/timeline.hpp"

/// Kernel round 2 property suite: the row-wise candidate API must be
/// bit-identical to the scalar queries it replaces, the annealer's O(1)
/// view patches must be indistinguishable from a fresh sync, and the
/// batched annealer must be deterministic in (seed, K) regardless of how
/// (or whether) its slots are parallelised.

namespace saga {
namespace {

/// Random layered DAG + heterogeneous network (same shape the kernel
/// bench uses, smaller so the walk covers many graphs).
ProblemInstance fuzzed_instance(std::size_t tasks, std::size_t nodes, std::uint64_t seed) {
  Rng rng(seed);
  ProblemInstance inst;
  std::vector<TaskId> previous;
  std::vector<TaskId> current;
  for (std::size_t i = 0; i < tasks; ++i) {
    const TaskId t = inst.graph.add_task(rng.uniform(0.0, 2.0));
    if (!previous.empty()) {
      const auto preds = std::min<std::size_t>(previous.size(), 1 + rng.index(3));
      for (std::size_t p = 0; p < preds; ++p) {
        // Occasional zero-size transfers exercise comm_time's early-out.
        const double cost = rng.index(4) == 0 ? 0.0 : rng.uniform(0.1, 1.0);
        inst.graph.add_dependency(previous[rng.index(previous.size())], t, cost);
      }
    }
    current.push_back(t);
    if (current.size() == 3) {
      previous = std::move(current);
      current.clear();
    }
  }
  inst.network = Network(nodes);
  for (NodeId v = 0; v < nodes; ++v) inst.network.set_speed(v, rng.uniform(0.2, 2.0));
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      inst.network.set_strength(a, b, rng.uniform(0.2, 2.0));
    }
  }
  return inst;
}

bool same_instance(const ProblemInstance& a, const ProblemInstance& b) {
  if (a.graph.task_count() != b.graph.task_count()) return false;
  if (a.graph.dependency_count() != b.graph.dependency_count()) return false;
  for (TaskId t = 0; t < a.graph.task_count(); ++t) {
    if (a.graph.cost(t) != b.graph.cost(t)) return false;
    const auto sa = a.graph.successors(t);
    const auto sb = b.graph.successors(t);
    if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) return false;
    for (const TaskId s : sa) {
      if (a.graph.dependency_cost(t, s) != b.graph.dependency_cost(t, s)) return false;
    }
  }
  if (a.network.node_count() != b.network.node_count()) return false;
  for (NodeId v = 0; v < a.network.node_count(); ++v) {
    if (a.network.speed(v) != b.network.speed(v)) return false;
    for (NodeId u = 0; u < a.network.node_count(); ++u) {
      if (a.network.strength(v, u) != b.network.strength(v, u)) return false;
    }
  }
  return true;
}

// --- eft_row == scalar queries, at every construction step -----------------

TEST(RowWiseCandidates, MatchesScalarQueriesMidConstruction) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto inst = fuzzed_instance(4 + seed % 9, 2 + seed % 5, 100 + seed);
    Rng rng(7 * seed + 1);
    TimelineArena arena;
    TimelineBuilder builder(inst, &arena);
    const std::size_t nodes = inst.network.node_count();
    while (!builder.complete()) {
      const auto ready = builder.ready_tasks();
      ASSERT_FALSE(ready.empty());
      for (const TaskId t : ready) {
        for (const bool insertion : {false, true}) {
          const auto row = builder.eft_row(t, insertion);
          ASSERT_EQ(row.start.size(), nodes);
          for (NodeId v = 0; v < nodes; ++v) {
            // Bit-exact: the sweep must reproduce the scalar path exactly.
            EXPECT_EQ(row.start[v], builder.earliest_start(t, v, insertion))
                << "seed " << seed << " task " << t << " node " << v << " ins " << insertion;
            EXPECT_EQ(row.finish[v], builder.earliest_finish(t, v, insertion));
            EXPECT_EQ(builder.data_ready_row(t)[v], builder.data_ready_time(t, v));
          }
        }
      }
      // Random placement (random ready task, random node, either mode)
      // drives the walk through diverse partial schedules.
      const TaskId t = ready[rng.index(ready.size())];
      const auto v = static_cast<NodeId>(rng.index(nodes));
      builder.place_earliest(t, v, rng.index(2) == 0);
    }
  }
}

TEST(RowWiseCandidates, ReadyTasksMatchesBruteForce) {
  const auto inst = fuzzed_instance(12, 3, 5);
  Rng rng(3);
  TimelineArena arena;
  TimelineBuilder builder(inst, &arena);
  while (!builder.complete()) {
    std::vector<TaskId> expected;
    for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
      if (builder.ready(t)) expected.push_back(t);
    }
    const auto ready = builder.ready_tasks();
    ASSERT_EQ(std::vector<TaskId>(ready.begin(), ready.end()), expected);
    builder.place_earliest(ready[rng.index(ready.size())],
                           static_cast<NodeId>(rng.index(inst.network.node_count())), false);
  }
  EXPECT_TRUE(builder.ready_tasks().empty());
}

// --- patched view == freshly synced view -----------------------------------

void expect_view_matches_fresh(const InstanceView& view, const ProblemInstance& inst) {
  const InstanceView fresh(inst);
  ASSERT_TRUE(view.in_sync_with(inst));
  ASSERT_EQ(view.task_count(), fresh.task_count());
  ASSERT_EQ(view.node_count(), fresh.node_count());
  const auto topo_a = view.topological_order();
  const auto topo_b = fresh.topological_order();
  ASSERT_TRUE(std::equal(topo_a.begin(), topo_a.end(), topo_b.begin(), topo_b.end()));
  EXPECT_EQ(view.mean_inverse_speed(), fresh.mean_inverse_speed());
  EXPECT_EQ(view.mean_inverse_strength(), fresh.mean_inverse_strength());
  for (TaskId t = 0; t < view.task_count(); ++t) {
    EXPECT_EQ(view.task_cost(t), fresh.task_cost(t));
    const auto pa = view.predecessors(t);
    const auto pb = fresh.predecessors(t);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].task, pb[i].task);
      EXPECT_EQ(pa[i].cost, pb[i].cost);
    }
    const auto sa = view.successors(t);
    const auto sb = fresh.successors(t);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].task, sb[i].task);
      EXPECT_EQ(sa[i].cost, sb[i].cost);
    }
    for (NodeId v = 0; v < view.node_count(); ++v) {
      EXPECT_EQ(view.exec_time(t, v), fresh.exec_time(t, v));
      // The cached exec row, when present, must hold exactly the on-the-fly
      // quotients.
      if (const double* exec = view.exec_row_or_null(t)) {
        EXPECT_EQ(exec[v], fresh.exec_time(t, v));
      }
    }
    const std::size_t base = view.successors_base(t);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      for (NodeId v = 0; v < view.node_count(); ++v) {
        if (const double* comm = view.comm_row_or_null(base + i, v)) {
          for (NodeId u = 0; u < view.node_count(); ++u) {
            EXPECT_EQ(comm[u], fresh.comm_time(sa[i].cost, v, u));
          }
        }
      }
    }
  }
}

TEST(ViewPatches, PerturbationWalkMatchesFreshSyncEveryStep) {
  auto config = pisa::PerturbationConfig::generic();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    ProblemInstance state = pisa::random_chain_instance(31 + seed);
    TimelineArena arena;
    (void)arena.view_for(state);  // initial sync
    Rng rng(seed);
    for (int step = 0; step < 160; ++step) {
      ASSERT_TRUE(arena.view().in_sync_with(state));
      const auto applied = pisa::perturb_in_place_recorded(state, config, rng);
      if (!applied.has_value()) continue;
      // Apply the recorded perturbation through the patch API, exactly as
      // the annealer does.
      auto& view = arena.view();
      switch (applied->op) {
        case pisa::PerturbationOp::kChangeNetworkNodeWeight:
          view.patch_node_speed(state, applied->a, applied->after);
          break;
        case pisa::PerturbationOp::kChangeNetworkEdgeWeight:
          view.patch_link_strength(state, applied->a, applied->b, applied->after);
          break;
        case pisa::PerturbationOp::kChangeTaskWeight:
          view.patch_task_cost(state, applied->a, applied->after);
          break;
        case pisa::PerturbationOp::kChangeDependencyWeight:
          view.patch_dependency_cost(state, applied->a, applied->b, applied->after);
          break;
        case pisa::PerturbationOp::kAddDependency:
          view.patch_add_dependency(state, applied->a, applied->b, applied->after);
          break;
        case pisa::PerturbationOp::kRemoveDependency:
          view.patch_remove_dependency(state, applied->a, applied->b);
          break;
      }
      expect_view_matches_fresh(view, state);
      if (rng.index(2) == 0) {
        // Roll back, as a rejected candidate would, and re-verify.
        pisa::undo_perturbation(state, *applied);
        switch (applied->op) {
          case pisa::PerturbationOp::kChangeNetworkNodeWeight:
            view.patch_node_speed(state, applied->a, applied->before);
            break;
          case pisa::PerturbationOp::kChangeNetworkEdgeWeight:
            view.patch_link_strength(state, applied->a, applied->b, applied->before);
            break;
          case pisa::PerturbationOp::kChangeTaskWeight:
            view.patch_task_cost(state, applied->a, applied->before);
            break;
          case pisa::PerturbationOp::kChangeDependencyWeight:
            view.patch_dependency_cost(state, applied->a, applied->b, applied->before);
            break;
          case pisa::PerturbationOp::kAddDependency:
            view.patch_remove_dependency(state, applied->a, applied->b);
            break;
          case pisa::PerturbationOp::kRemoveDependency:
            view.patch_add_dependency(state, applied->a, applied->b, applied->before);
            break;
        }
        expect_view_matches_fresh(view, state);
      }
    }
  }
}

TEST(ViewPatches, MakespansThroughPatchedViewMatchFreshEvaluation) {
  const auto heft = make_scheduler("HEFT", 1);
  const auto cpop = make_scheduler("CPoP", 2);
  auto config = pisa::PerturbationConfig::generic();
  ProblemInstance state = pisa::random_chain_instance(5);
  TimelineArena arena;
  Rng rng(17);
  for (int step = 0; step < 120; ++step) {
    (void)pisa::perturb_in_place_recorded(state, config, rng);
    // Arena path syncs (or patches) its cached view; the arena-free path
    // rebuilds everything from the instance. Identical bits required.
    EXPECT_EQ(heft->plan_makespan(state, &arena), heft->plan_makespan(state, nullptr));
    EXPECT_EQ(cpop->plan_makespan(state, &arena), cpop->plan_makespan(state, nullptr));
  }
}

// --- batched annealer determinism ------------------------------------------

TEST(BatchAnnealer, DeterministicAcrossRepeatsAndThreadCounts) {
  const auto target = make_scheduler("HEFT", 1);
  const auto baseline = make_scheduler("CPoP", 2);
  const auto config = pisa::PerturbationConfig::generic();
  const auto initial = pisa::random_chain_instance(11);

  pisa::AnnealingParams params;
  params.max_iterations = 120;
  params.batch = 4;
  const auto serial = pisa::anneal(*target, *baseline, initial, config, params, 99);
  const auto serial_again = pisa::anneal(*target, *baseline, initial, config, params, 99);
  EXPECT_EQ(serial.best_ratio, serial_again.best_ratio);
  EXPECT_EQ(serial.evaluations, serial_again.evaluations);
  EXPECT_EQ(serial.accepted, serial_again.accepted);
  EXPECT_EQ(serial.improved, serial_again.improved);
  EXPECT_TRUE(same_instance(serial.best_instance, serial_again.best_instance));

  for (const std::size_t threads : {2, 4}) {
    ThreadPool pool(threads);
    pisa::AnnealingParams pooled = params;
    pooled.pool = &pool;
    const auto result = pisa::anneal(*target, *baseline, initial, config, pooled, 99);
    EXPECT_EQ(result.best_ratio, serial.best_ratio) << threads << " threads";
    EXPECT_EQ(result.evaluations, serial.evaluations);
    EXPECT_EQ(result.accepted, serial.accepted);
    EXPECT_EQ(result.improved, serial.improved);
    EXPECT_TRUE(same_instance(result.best_instance, serial.best_instance));
  }
}

TEST(BatchAnnealer, TypeErasedObjectiveMatchesSchedulerPairPath) {
  // anneal() runs the templated concrete-lambda path; anneal_objective runs
  // the std::function path. Same seed, same batch: identical trajectories.
  const auto target = make_scheduler("HEFT", 1);
  const auto baseline = make_scheduler("CPoP", 2);
  const auto config = pisa::PerturbationConfig::generic();
  const auto initial = pisa::random_chain_instance(3);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
    pisa::AnnealingParams params;
    params.max_iterations = 80;
    params.batch = batch;
    const auto direct = pisa::anneal(*target, *baseline, initial, config, params, 123);
    const pisa::ArenaObjective objective = [&](const ProblemInstance& inst,
                                               TimelineArena& arena) {
      return pisa::makespan_ratio(*target, *baseline, inst, &arena);
    };
    const auto erased = pisa::anneal_objective(objective, initial, config, params, 123);
    EXPECT_EQ(direct.best_ratio, erased.best_ratio) << "batch " << batch;
    EXPECT_EQ(direct.evaluations, erased.evaluations);
    EXPECT_EQ(direct.accepted, erased.accepted);
    EXPECT_TRUE(same_instance(direct.best_instance, erased.best_instance));
  }
}

// --- unchecked dependency insertion ----------------------------------------

TEST(UncheckedAdd, MatchesCheckedAddOnPrevalidatedEdges) {
  const auto base = fuzzed_instance(10, 3, 77);
  Rng rng(13);
  TaskGraph checked = base.graph;
  TaskGraph unchecked = base.graph;
  for (int i = 0; i < 60; ++i) {
    const auto from = static_cast<TaskId>(rng.index(base.graph.task_count()));
    const auto to = static_cast<TaskId>(rng.index(base.graph.task_count()));
    const double cost = rng.uniform(0.0, 1.0);
    if (from == to || checked.has_dependency(from, to) ||
        checked.would_create_cycle(from, to)) {
      continue;
    }
    ASSERT_TRUE(checked.add_dependency(from, to, cost));
    unchecked.add_dependency_unchecked(from, to, cost);
    ASSERT_EQ(checked.dependency_count(), unchecked.dependency_count());
    for (TaskId t = 0; t < checked.task_count(); ++t) {
      const auto sa = checked.successors(t);
      const auto sb = unchecked.successors(t);
      ASSERT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()));
      const auto pa = checked.predecessors(t);
      const auto pb = unchecked.predecessors(t);
      ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
    }
    ASSERT_EQ(checked.topological_order(), unchecked.topological_order());
  }
}

}  // namespace
}  // namespace saga
