#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"
#include "schedulers/brute_force.hpp"
#include "schedulers/ensemble.hpp"
#include "schedulers/genetic.hpp"
#include "schedulers/sim_anneal.hpp"

/// The extension schedulers (beyond the paper's Table I): ERT, MH, LMT,
/// LC, GA, SimAnneal, Ensemble.

namespace saga {
namespace {

class ExtensionValidity : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtensionValidity, ValidOnDiverseInstances) {
  const auto scheduler = make_scheduler(GetParam(), 5);
  for (const char* dataset : {"chains", "blast", "montage"}) {
    const auto inst = datasets::generate_instance(dataset, 3, 0);
    const Schedule s = scheduler->schedule(inst);
    const auto result = s.validate(inst);
    EXPECT_TRUE(result.ok) << GetParam() << " on " << dataset << ": " << result.message;
  }
}

TEST_P(ExtensionValidity, ValidOnPisaChainInstances) {
  const auto scheduler = make_scheduler(GetParam(), 5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    EXPECT_TRUE(scheduler->schedule(inst).validate(inst).ok) << GetParam();
  }
}

TEST_P(ExtensionValidity, DeterministicForFixedSeed) {
  const auto inst = datasets::generate_instance("chains", 8, 1);
  const auto a = make_scheduler(GetParam(), 11)->schedule(inst);
  const auto b = make_scheduler(GetParam(), 11)->schedule(inst);
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(a.of_task(t).node, b.of_task(t).node);
    EXPECT_DOUBLE_EQ(a.of_task(t).start, b.of_task(t).start);
  }
}

TEST_P(ExtensionValidity, HandlesEmptyGraph) {
  ProblemInstance inst;
  inst.network = Network(2);
  const Schedule s = make_scheduler(GetParam(), 1)->schedule(inst);
  EXPECT_EQ(s.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllExtensions, ExtensionValidity,
                         ::testing::ValuesIn(extension_scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(ExtensionRegistry, EightExtensions) {
  EXPECT_EQ(extension_scheduler_names().size(), 8u);
  for (const auto& name : extension_scheduler_names()) {
    EXPECT_EQ(make_scheduler(name)->name(), name);
  }
}

TEST(Ga, NeverWorseThanHeftByConstruction) {
  // GA seeds its population with the HEFT encoding and keeps an elite, so
  // its makespan is at most the decoded HEFT makespan.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const double ga = GeneticScheduler(seed).schedule(inst).makespan();
    const double heft = make_scheduler("HEFT")->schedule(inst).makespan();
    EXPECT_LE(ga, heft + 1e-9) << "seed " << seed;
  }
}

TEST(Ga, ApproachesOptimumOnTinyInstances) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    const double ga = GeneticScheduler(7).schedule(inst).makespan();
    const double opt = BruteForceScheduler{}.schedule(inst).makespan();
    EXPECT_GE(ga, opt - 1e-9);
    EXPECT_LE(ga, 1.25 * opt + 1e-9) << "seed " << seed;
  }
}

TEST(SimAnneal, NeverWorseThanItsHeftSeed) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = pisa::random_chain_instance(seed + 20);
    const double sa = SimAnnealScheduler(seed).schedule(inst).makespan();
    // SimAnneal starts from the decoded HEFT encoding and tracks the best
    // state, so it cannot end worse than that starting point.
    const auto heft = make_scheduler("HEFT")->schedule(inst);
    EXPECT_LE(sa, heft.makespan() * 1.0 + 1e-6);
  }
}

TEST(Ensemble, MatchesBestMemberExactly) {
  const auto inst = datasets::generate_instance("chains", 4, 2);
  const EnsembleScheduler ensemble({"HEFT", "CPoP", "MinMin"}, 3);
  const double best = std::min({make_scheduler("HEFT")->schedule(inst).makespan(),
                                make_scheduler("CPoP")->schedule(inst).makespan(),
                                make_scheduler("MinMin")->schedule(inst).makespan()});
  EXPECT_DOUBLE_EQ(ensemble.schedule(inst).makespan(), best);
}

TEST(Ensemble, RequiresMembers) {
  EXPECT_THROW(EnsembleScheduler(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Ensemble, InheritsMemberRequirements) {
  const EnsembleScheduler free_ensemble({"HEFT", "CPoP"});
  EXPECT_FALSE(free_ensemble.requirements().homogeneous_node_speeds);
  const EnsembleScheduler constrained({"HEFT", "ETF", "GDL"});
  EXPECT_TRUE(constrained.requirements().homogeneous_node_speeds);   // ETF
  EXPECT_TRUE(constrained.requirements().homogeneous_link_strengths);  // GDL
}

TEST(Ensemble, SingleMemberEqualsThatScheduler) {
  const auto inst = fig1_instance();
  const EnsembleScheduler solo({"MCT"});
  EXPECT_DOUBLE_EQ(solo.schedule(inst).makespan(),
                   make_scheduler("MCT")->schedule(inst).makespan());
}

TEST(Lc, ClusersCriticalPathTogether) {
  // On a pure chain, linear clustering yields one cluster on the fastest
  // node — identical to FastestNode.
  ProblemInstance inst;
  TaskId prev = inst.graph.add_task(1.0);
  for (int i = 0; i < 4; ++i) {
    const TaskId cur = inst.graph.add_task(1.0);
    inst.graph.add_dependency(prev, cur, 5.0);
    prev = cur;
  }
  inst.network = Network(3);
  inst.network.set_speed(1, 2.0);
  const auto lc = make_scheduler("LC")->schedule(inst);
  for (const auto& a : lc.assignments()) EXPECT_EQ(a.node, 1u);
  EXPECT_DOUBLE_EQ(lc.makespan(), 2.5);
}

TEST(Lc, AvoidsCommunicationHeftPaysOnJoinHeavyGraphs) {
  // A deliberately comm-heavy fork-join: clustering the whole spine often
  // beats eager parallelisation. We only check validity + that LC is not
  // catastrophically worse than HEFT across seeds.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto inst = datasets::generate_instance("chains", 21, seed % 3);
    const double lc = make_scheduler("LC")->schedule(inst).makespan();
    const double serial = make_scheduler("FastestNode")->schedule(inst).makespan();
    EXPECT_LE(lc, serial * 3.0 + 1e-9);
  }
}

TEST(Lmt, ProcessesLevelsInOrder) {
  // In an LMT schedule no task may start before some task of an earlier
  // level *on the same node* that was placed there... the robust invariant
  // is simply validity plus: a source task is never scheduled after a
  // deeper task on the same node when both are on level-adjacent paths.
  const auto inst = datasets::generate_instance("epigenomics", 2, 0);
  const auto s = make_scheduler("LMT")->schedule(inst);
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(Ert, PrefersTasksWhoseDataIsReadyFirst) {
  // Two ready tasks: x's input arrives later than y's; ERT dispatches y.
  ProblemInstance inst;
  const TaskId src = inst.graph.add_task("src", 1.0);
  const TaskId x = inst.graph.add_task("x", 1.0);
  const TaskId y = inst.graph.add_task("y", 1.0);
  inst.graph.add_dependency(src, x, 10.0);
  inst.graph.add_dependency(src, y, 0.0);
  inst.network = Network(2);
  const auto s = make_scheduler("ERT")->schedule(inst);
  EXPECT_TRUE(s.validate(inst).ok);
  EXPECT_LE(s.of_task(y).start, s.of_task(x).start);
}

TEST(Mh, MatchesHeftWithoutInsertionOnFig1) {
  // On Fig. 1 no insertion gaps arise, so MH and HEFT coincide.
  const auto inst = fig1_instance();
  EXPECT_DOUBLE_EQ(make_scheduler("MH")->schedule(inst).makespan(),
                   make_scheduler("HEFT")->schedule(inst).makespan());
}

}  // namespace
}  // namespace saga
