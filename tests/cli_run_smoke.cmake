# End-to-end smoke test for the declarative experiment CLI, run by ctest in
# script mode:
#   cmake -DSAGA_CLI=<path> -DWORK_DIR=<scratch> -DSPECS_DIR=<examples/specs> \
#         -P cli_run_smoke.cmake
# Exercises: `saga run --dry-run` on every checked-in example spec (schema
# drift fails here), a full `saga run` of the tiny specs, --set overrides,
# `saga list --tags`, and the usage-error exit-code contract.

foreach(var SAGA_CLI WORK_DIR SPECS_DIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(MAKE_DIRECTORY ${WORK_DIR})

function(saga_expect_success name)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' failed (exit ${rv})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_output "${out}" PARENT_SCOPE)
endfunction()

function(saga_expect_failure name expected_code stderr_pattern)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' unexpectedly succeeded")
  endif()
  if(NOT expected_code STREQUAL "any" AND NOT rv EQUAL ${expected_code})
    message(FATAL_ERROR "step '${name}' exited ${rv}, expected ${expected_code}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${stderr_pattern}")
    message(FATAL_ERROR "step '${name}' stderr does not match '${stderr_pattern}':\n${err}")
  endif()
endfunction()

# 1. Every checked-in example spec must pass --dry-run validation.
file(GLOB example_specs ${SPECS_DIR}/*.json)
if(NOT example_specs)
  message(FATAL_ERROR "no example specs found under ${SPECS_DIR}")
endif()
foreach(spec IN LISTS example_specs)
  get_filename_component(spec_name ${spec} NAME_WE)
  saga_expect_success(dry_${spec_name} run ${spec} --dry-run)
  if(NOT dry_${spec_name}_output MATCHES "spec is valid")
    message(FATAL_ERROR "dry run of ${spec} did not report a valid spec:\n${dry_${spec_name}_output}")
  endif()
endforeach()

# 2. Full runs of the tiny specs, with a --set CSV override.
saga_expect_success(run_fig02 run ${SPECS_DIR}/fig02_tiny.json --set csv=${WORK_DIR}/fig02_tiny.csv)
if(NOT run_fig02_output MATCHES "blast")
  message(FATAL_ERROR "fig02_tiny run does not mention blast:\n${run_fig02_output}")
endif()
if(NOT EXISTS ${WORK_DIR}/fig02_tiny.csv)
  message(FATAL_ERROR "--set csv=... did not produce the CSV sink")
endif()

saga_expect_success(run_fig04 run ${SPECS_DIR}/fig04_small.json --set pisa.restarts=1 --set pisa.max_iterations=40)
if(NOT run_fig04_output MATCHES "Worst")
  message(FATAL_ERROR "fig04_small run does not print the pairwise grid:\n${run_fig04_output}")
endif()

saga_expect_success(run_schedule run ${SPECS_DIR}/schedule_blast.json)
if(NOT run_schedule_output MATCHES "HEFT")
  message(FATAL_ERROR "schedule_blast run does not list HEFT:\n${run_schedule_output}")
endif()

# 3. Registry enumeration by tag.
saga_expect_success(list_tags list --tags)
if(NOT list_tags_output MATCHES "benchmark")
  message(FATAL_ERROR "saga list --tags does not mention the benchmark tag:\n${list_tags_output}")
endif()
saga_expect_success(list_benchmark list --tags benchmark)
if(NOT list_benchmark_output MATCHES "HEFT")
  message(FATAL_ERROR "saga list --tags benchmark does not mention HEFT:\n${list_benchmark_output}")
endif()

# 4. Schema drift fails loudly: an unknown spec key is rejected by name.
file(WRITE ${WORK_DIR}/bad_spec.json "{\"mode\": \"schedule\", \"schedulerz\": [\"HEFT\"]}")
saga_expect_failure(bad_key 1 "unknown key 'schedulerz'" run ${WORK_DIR}/bad_spec.json --dry-run)

# 5. Usage errors exit 2 and print usage; domain errors exit 1 and suggest.
saga_expect_failure(run_usage 2 "usage: saga run" run)
saga_expect_failure(compare_usage 2 "usage: saga compare" compare)
saga_expect_failure(list_usage 2 "usage: saga list" list --tags benchmark extra)
saga_expect_failure(unknown_command 2 "usage: saga" definitely-not-a-command)
saga_expect_failure(unknown_scheduler 1 "did you mean 'HEFT'" schedule heff ${WORK_DIR}/bad_spec.json)
saga_expect_failure(unknown_tag 1 "valid tags" list --tags nope)

message(STATUS "cli_run_smoke: all steps passed")
