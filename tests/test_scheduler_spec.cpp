// Scheduler spec grammar and descriptor registry: parse/round-trip of
// "name?key=val&key=val" strings, duplicate/unknown-key rejection with
// nearest-name suggestions, alias and case-insensitive resolution, tag
// enumeration consistency with the historical rosters, and bit-identical
// construction through spec strings vs make_scheduler.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/nearest.hpp"
#include "core/annealer.hpp"
#include "sched/registry.hpp"
#include "sched/spec.hpp"

namespace {

using namespace saga;

// --- grammar ---------------------------------------------------------------

TEST(SchedulerSpecGrammar, ParsesBareName) {
  const auto spec = parse_scheduler_spec("HEFT");
  EXPECT_EQ(spec.name, "HEFT");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "HEFT");
}

TEST(SchedulerSpecGrammar, ParsesParams) {
  const auto spec = parse_scheduler_spec("ga?pop=64&gens=200");
  EXPECT_EQ(spec.name, "ga");
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].first, "pop");
  EXPECT_EQ(spec.params[0].second, "64");
  EXPECT_EQ(spec.params[1].first, "gens");
  EXPECT_EQ(spec.params[1].second, "200");
}

TEST(SchedulerSpecGrammar, RoundTripsPreservingOrder) {
  for (const char* text :
       {"HEFT", "heft?rank=best&insertion=false", "ga?gens=200&pop=64",
        "ensemble?members=heft+cpop+minmin", "wba?tolerance=0.25&seed=7"}) {
    EXPECT_EQ(parse_scheduler_spec(text).to_string(), text) << text;
  }
}

TEST(SchedulerSpecGrammar, RejectsEmptyName) {
  EXPECT_THROW((void)parse_scheduler_spec(""), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler_spec("?pop=4"), std::invalid_argument);
}

TEST(SchedulerSpecGrammar, RejectsMissingEquals) {
  EXPECT_THROW((void)parse_scheduler_spec("ga?pop"), std::invalid_argument);
}

TEST(SchedulerSpecGrammar, RejectsEmptyParamSection) {
  EXPECT_THROW((void)parse_scheduler_spec("ga?"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler_spec("ga?pop=4&"), std::invalid_argument);
}

TEST(SchedulerSpecGrammar, RejectsDuplicateKeyNamingIt) {
  try {
    (void)parse_scheduler_spec("ga?pop=4&pop=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate parameter 'pop'"), std::string::npos)
        << e.what();
  }
}

TEST(SchedulerSpecGrammar, RejectsEmptyKeyAndValue) {
  EXPECT_THROW((void)parse_scheduler_spec("ga?=4"), std::invalid_argument);
  EXPECT_THROW((void)parse_scheduler_spec("ga?pop="), std::invalid_argument);
}

// --- typed params ----------------------------------------------------------

TEST(SchedulerParams, TypedConversionErrorsNameSchedulerAndKey) {
  const auto spec = parse_scheduler_spec("ga?pop=banana");
  try {
    (void)SchedulerRegistry::instance().make(spec, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'GA'"), std::string::npos) << what;
    EXPECT_NE(what.find("'pop'"), std::string::npos) << what;
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
  }
}

TEST(SchedulerParams, BoolAndListParsing) {
  // insertion=false flips HEFT's placement; members lists split on '+'.
  EXPECT_NO_THROW((void)make_scheduler("heft?insertion=false"));
  EXPECT_NO_THROW((void)make_scheduler("ensemble?members=heft+cpop"));
  EXPECT_THROW((void)make_scheduler("heft?insertion=maybe"), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler("ensemble?members=heft++cpop"), std::invalid_argument);
}

// --- registry resolution ---------------------------------------------------

TEST(SchedulerRegistry, ResolvesCanonicalLowercaseAndAliases) {
  auto& registry = SchedulerRegistry::instance();
  EXPECT_EQ(registry.resolve("HEFT").name, "HEFT");
  EXPECT_EQ(registry.resolve("heft").name, "HEFT");
  EXPECT_EQ(registry.resolve("fastestnode").name, "FastestNode");
  EXPECT_EQ(registry.resolve("LinearClustering").name, "LC");
  EXPECT_EQ(registry.resolve("DLS").name, "GDL");
  EXPECT_EQ(registry.resolve("sa").name, "SimAnneal");
}

TEST(SchedulerRegistry, UnknownNameSuggestsNearest) {
  try {
    (void)SchedulerRegistry::instance().resolve("heff");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean 'HEFT'?"), std::string::npos) << what;
    EXPECT_NE(what.find("valid tags"), std::string::npos) << what;
  }
}

TEST(SchedulerRegistry, UnknownParamSuggestsNearestAndListsValid) {
  try {
    (void)SchedulerRegistry::instance().make(parse_scheduler_spec("ga?pops=4"), 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no parameter 'pops'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'pop'?"), std::string::npos) << what;
    EXPECT_NE(what.find("valid parameters"), std::string::npos) << what;
  }
}

TEST(SchedulerRegistry, ParamlessSchedulerRejectsAnyKey) {
  EXPECT_THROW((void)make_scheduler("minmin?foo=1"), std::invalid_argument);
  EXPECT_NO_THROW((void)make_scheduler("minmin?seed=1"));  // universal key
}

TEST(SchedulerRegistry, TagEnumerationMatchesHistoricalRosters) {
  auto& registry = SchedulerRegistry::instance();
  EXPECT_EQ(registry.names("table1", NameOrder::kRegistration), all_scheduler_names());
  EXPECT_EQ(registry.names("benchmark", NameOrder::kLexicographic),
            benchmark_scheduler_names());
  EXPECT_EQ(registry.names("app-specific", NameOrder::kRegistration),
            app_specific_scheduler_names());
  EXPECT_EQ(registry.names("extension", NameOrder::kRegistration),
            extension_scheduler_names());
  EXPECT_EQ(registry.names().size(), 26u);
}

TEST(SchedulerRegistry, RandomizedTagCoversSeededSchedulers) {
  const auto randomized = SchedulerRegistry::instance().names("randomized");
  EXPECT_EQ(randomized.size(), 5u);
  for (const char* name : {"WBA", "GA", "SimAnneal", "Ensemble", "Online"}) {
    EXPECT_NE(std::find(randomized.begin(), randomized.end(), name), randomized.end())
        << name;
  }
}

TEST(SchedulerRegistry, DescriptorsDeclareRequirementsMatchingInstances) {
  // The declarative capability flags must agree with the constructed
  // schedulers' requirements() overrides.
  auto& registry = SchedulerRegistry::instance();
  for (const auto& desc : registry.descriptors()) {
    if (desc.name == "Ensemble") continue;  // derived from members at runtime
    const auto scheduler = registry.make(parse_scheduler_spec(desc.name), 1);
    const auto reqs = scheduler->requirements();
    EXPECT_EQ(desc.requirements.homogeneous_node_speeds, reqs.homogeneous_node_speeds)
        << desc.name;
    EXPECT_EQ(desc.requirements.homogeneous_link_strengths, reqs.homogeneous_link_strengths)
        << desc.name;
  }
}

TEST(SchedulerRegistry, EnsembleMembersValidateEagerly) {
  // A misspelled member must fail at construction (where spec validation
  // and `saga run --dry-run` catch it), not on the first schedule() call.
  try {
    (void)make_scheduler("ensemble?members=hft+cpop");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'HEFT'?"), std::string::npos)
        << e.what();
  }
  EXPECT_NO_THROW((void)make_scheduler("ensemble?members=heft+cpop"));
}

TEST(SchedulerRegistry, SeedParamOverridesFactorySeed) {
  const auto inst = pisa::random_chain_instance(3);
  const auto a = make_scheduler("wba?seed=7", 999)->schedule(inst);
  const auto b = make_scheduler("WBA", 7)->schedule(inst);
  EXPECT_EQ(a.makespan(), b.makespan());
}

TEST(SchedulerRegistry, AddRejectsCollisions) {
  SchedulerRegistry registry;
  SchedulerDesc desc;
  desc.name = "Dummy";
  desc.aliases = {"dm"};
  desc.factory = [](const SchedulerParams&, std::uint64_t) { return make_scheduler("HEFT"); };
  registry.add(desc);
  EXPECT_THROW(registry.add(desc), std::invalid_argument);  // same name
  SchedulerDesc alias_clash = desc;
  alias_clash.name = "Other";
  alias_clash.aliases = {"DUMMY"};  // case-insensitive collision
  EXPECT_THROW(registry.add(alias_clash), std::invalid_argument);
  SchedulerDesc no_factory;
  no_factory.name = "NoFactory";
  EXPECT_THROW(registry.add(no_factory), std::invalid_argument);
}

// --- spec-constructed schedulers are bit-identical -------------------------

TEST(SchedulerRegistry, SpecConstructionMatchesMakeSchedulerOnChainInstance) {
  // Spec strings with explicitly spelled default parameters must construct
  // schedulers bit-identical to the bare-name shims (the golden-makespan
  // suite covers all fixtures; this covers the parameterized paths).
  const auto inst = pisa::random_chain_instance(11);
  const std::pair<const char*, const char*> equivalents[] = {
      {"HEFT", "heft?rank=mean&insertion=true"},
      {"GA", "ga?pop=24&gens=60&tournament=3&crossover=0.9&mutation=0.08"},
      {"SimAnneal", "simanneal?tmax=1.0&tmin=0.001&alpha=0.98&steps=8"},
      {"WBA", "wba?tolerance=0.5"},
      {"SMT", "smt?epsilon=0.01"},
      {"Ensemble", "ensemble?members=HEFT+CPoP+MinMin"},
  };
  for (const auto& [name, spec] : equivalents) {
    const std::uint64_t seed = 0x5a6a0001ULL;
    const auto via_name = make_scheduler(name, seed)->schedule(inst);
    const auto via_spec = make_scheduler(spec, seed)->schedule(inst);
    EXPECT_EQ(via_name.makespan(), via_spec.makespan()) << spec;
  }
}

// --- nearest-match helper --------------------------------------------------

TEST(NearestMatch, EditDistanceIsCaseInsensitive) {
  EXPECT_EQ(edit_distance("heft", "HEFT"), 0u);
  EXPECT_EQ(edit_distance("heff", "HEFT"), 1u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
}

TEST(NearestMatch, FarQueriesProduceNoSuggestion) {
  EXPECT_EQ(nearest_match("zzzzzzzz", {"HEFT", "CPoP"}), "");
  EXPECT_EQ(did_you_mean("zzzzzzzz", {"HEFT", "CPoP"}), "");
  EXPECT_EQ(nearest_match("heff", {"HEFT", "CPoP"}), "HEFT");
}

}  // namespace
