#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "datasets/iot/edge_fog_cloud.hpp"
#include "datasets/iot/riotbench.hpp"

namespace saga {
namespace {

TEST(EdgeFogCloud, ShapeCountsInPaperRanges) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto shape = iot::sample_edge_fog_cloud_shape(seed);
    EXPECT_GE(shape.edge_nodes, 75u);
    EXPECT_LE(shape.edge_nodes, 125u);
    EXPECT_GE(shape.fog_nodes, 3u);
    EXPECT_LE(shape.fog_nodes, 7u);
    EXPECT_GE(shape.cloud_nodes, 1u);
    EXPECT_LE(shape.cloud_nodes, 10u);
  }
}

TEST(EdgeFogCloud, TierSpeedsMatchPaper) {
  const iot::EdgeFogCloudShape shape{.edge_nodes = 2, .fog_nodes = 2, .cloud_nodes = 2};
  const Network net = iot::make_edge_fog_cloud_network(shape);
  ASSERT_EQ(net.node_count(), 6u);
  EXPECT_DOUBLE_EQ(net.speed(0), 1.0);   // edge
  EXPECT_DOUBLE_EQ(net.speed(1), 1.0);
  EXPECT_DOUBLE_EQ(net.speed(2), 6.0);   // fog
  EXPECT_DOUBLE_EQ(net.speed(3), 6.0);
  EXPECT_DOUBLE_EQ(net.speed(4), 50.0);  // cloud
  EXPECT_DOUBLE_EQ(net.speed(5), 50.0);
}

TEST(EdgeFogCloud, LinkStrengthsMatchPaper) {
  const iot::EdgeFogCloudShape shape{.edge_nodes = 1, .fog_nodes = 2, .cloud_nodes = 2};
  const Network net = iot::make_edge_fog_cloud_network(shape);
  // Layout: [edge=0][fog=1,2][cloud=3,4].
  EXPECT_DOUBLE_EQ(net.strength(0, 1), 60.0);   // edge-fog
  EXPECT_DOUBLE_EQ(net.strength(0, 3), 60.0);   // edge-cloud
  EXPECT_DOUBLE_EQ(net.strength(1, 2), 100.0);  // fog-fog
  EXPECT_DOUBLE_EQ(net.strength(1, 3), 100.0);  // fog-cloud
  EXPECT_TRUE(std::isinf(net.strength(3, 4)));  // cloud-cloud
}

TEST(Riotbench, EtlIsMostlyLinearWithTwoSinks) {
  Rng rng(1);
  const TaskGraph g = iot::make_etl_graph(rng);
  EXPECT_EQ(g.task_count(), 9u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 2u);
}

TEST(Riotbench, StatsFansOutToThreeStatistics) {
  Rng rng(2);
  const TaskGraph g = iot::make_stats_graph(rng);
  // senml_parse has three statistic consumers.
  TaskId parse = 0;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t) == "senml_parse") parse = t;
  }
  EXPECT_EQ(g.successors(parse).size(), 3u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(Riotbench, PredictBlendsTwoModels) {
  Rng rng(3);
  const TaskGraph g = iot::make_predict_graph(rng);
  TaskId publish = 0;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t) == "mqtt_publish") publish = t;
  }
  EXPECT_EQ(g.predecessors(publish).size(), 2u);
}

TEST(Riotbench, TaskCostsWithinClippedGaussianRange) {
  Rng rng(4);
  for (auto make : {iot::make_etl_graph, iot::make_stats_graph, iot::make_predict_graph,
                    iot::make_train_graph}) {
    const TaskGraph g = make(rng);
    for (TaskId t = 0; t < g.task_count(); ++t) {
      EXPECT_GE(g.cost(t), 10.0);
      EXPECT_LE(g.cost(t), 60.0);
    }
  }
}

TEST(Riotbench, DataFlowsAccordingToIoRatios) {
  Rng rng(5);
  const TaskGraph g = iot::make_etl_graph(rng);
  // senml_parse outputs 0.9x its input; its outgoing edge weight must be
  // 0.9 times its incoming edge weight.
  TaskId source = g.sources()[0];
  const TaskId parse = g.successors(source)[0];
  const TaskId next = g.successors(parse)[0];
  const double in = g.dependency_cost(source, parse);
  const double out = g.dependency_cost(parse, next);
  EXPECT_NEAR(out, 0.9 * in, 1e-9);
}

TEST(Riotbench, InputSizeWithinPaperRange) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const TaskGraph g = iot::make_etl_graph(rng);
    const TaskId source = g.sources()[0];
    const TaskId parse = g.successors(source)[0];
    // The source forwards the application input unchanged (ratio 1.0).
    const double input = g.dependency_cost(source, parse);
    EXPECT_GE(input, 500.0);
    EXPECT_LE(input, 1500.0);
  }
}

TEST(Riotbench, FullInstancesPairWithEdgeFogCloudNetworks) {
  const auto inst = iot::train_instance(7);
  EXPECT_GE(inst.network.node_count(), 79u);  // at least 75+3+1
  EXPECT_GT(inst.graph.task_count(), 0u);
}


TEST(Riotbench, TrainHasTimerSourceAndTwoModelBranches) {
  Rng rng(6);
  const TaskGraph g = iot::make_train_graph(rng);
  ASSERT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.name(g.sources()[0]), "timer_source");
  // annotate joins the two trained models; two sinks (blob, mqtt).
  TaskId annotate = 0;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t) == "annotate") annotate = t;
  }
  EXPECT_EQ(g.predecessors(annotate).size(), 2u);
  EXPECT_EQ(g.sinks().size(), 2u);
}

TEST(Riotbench, TableReadAmplifiesData) {
  // table_read has an output ratio of 5: its outgoing edges carry five
  // times its incoming trigger size.
  Rng rng(7);
  const TaskGraph g = iot::make_train_graph(rng);
  TaskId timer = g.sources()[0];
  const TaskId fetch = g.successors(timer)[0];
  const double in = g.dependency_cost(timer, fetch);
  const TaskId next = g.successors(fetch)[0];
  EXPECT_NEAR(g.dependency_cost(fetch, next), 5.0 * in, 1e-9);
}

}  // namespace
}  // namespace saga
