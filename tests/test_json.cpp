// The experiment layer's minimal JSON: parse/dump round-trips, escape and
// unicode handling, ordered objects with duplicate-key rejection, and
// line/column-annotated parse errors.

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/json.hpp"

namespace {

using saga::exp::Json;
using saga::exp::JsonArray;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedDocument) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.is_object());
  const Json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_EQ(doc.find("c")->as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Json doc = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
  EXPECT_EQ(doc.dump(), R"({"z": 1, "a": 2, "m": 3})");
}

TEST(Json, RejectsDuplicateKeys) {
  try {
    (void)Json::parse(R"({"a": 1, "a": 2})");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key 'a'"), std::string::npos) << e.what();
  }
}

TEST(Json, ParseErrorsCarryLineAndColumn) {
  try {
    (void)Json::parse("{\n  \"a\": [1, 2,\n}");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Json, RejectsTrailingGarbageAndBadLiterals) {
  EXPECT_THROW((void)Json::parse("{} x"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("1e999"), std::runtime_error);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string text = R"("a\"b\\c\n\tAé")";
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.as_string(), "a\"b\\c\n\tA\xc3\xa9");
  // Dump re-escapes control characters; re-parsing yields the same value.
  EXPECT_EQ(Json::parse(parsed.dump()).as_string(), parsed.as_string());
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_THROW((void)Json::parse(R"("\ud83d")"), std::runtime_error);
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double value : {0.25, 1.0 / 3.0, 1e-12, 123456789.125, -42.0}) {
    const Json dumped = Json::parse(Json::number(value).dump());
    EXPECT_EQ(dumped.as_number(), value);
  }
  EXPECT_EQ(Json::number(1234567.0).dump(), "1234567");
}

TEST(Json, DumpPrettyPrintsWithIndent) {
  Json doc = Json::object();
  doc.set("a", Json::number(1));
  doc.set("b", Json::array(JsonArray{Json::boolean(true)}));
  EXPECT_EQ(doc.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}\n");
}

TEST(Json, TypeMismatchesThrowDescriptively) {
  const Json doc = Json::parse("[1]");
  try {
    (void)doc.as_object();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("expected an object"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("found an array"), std::string::npos);
  }
}

TEST(Json, SetReplacesAndAppends) {
  Json doc = Json::object();
  doc.set("a", Json::number(1));
  doc.set("a", Json::number(2));
  doc.set("b", Json::string("x"));
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 2.0);
  EXPECT_EQ(doc.as_object().size(), 2u);
  Json null_doc;
  null_doc.set("k", Json::number(1));  // null promotes to object
  EXPECT_TRUE(null_doc.is_object());
}

TEST(Json, DepthLimitGuardsRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW((void)Json::parse(deep), std::runtime_error);
}

}  // namespace
