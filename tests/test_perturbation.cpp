#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string_view>

#include "core/annealer.hpp"
#include "core/perturbation.hpp"

namespace saga::pisa {
namespace {

ProblemInstance base_instance() { return random_chain_instance(42); }

TEST(Perturbation, OpNamesAreDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) {
    names.insert(to_string(static_cast<PerturbationOp>(i)));
  }
  EXPECT_EQ(names.size(), kPerturbationOpCount);
}

TEST(Perturbation, AppliesSomeOpByDefault) {
  Rng rng(1);
  const auto inst = base_instance();
  const auto result = perturb(inst, PerturbationConfig::generic(), rng);
  EXPECT_TRUE(result.applied.has_value());
}

TEST(Perturbation, WeightsStayInRangeOverLongWalks) {
  Rng rng(2);
  auto config = PerturbationConfig::generic();
  ProblemInstance inst = base_instance();
  for (int i = 0; i < 2000; ++i) {
    inst = perturb(inst, config, rng).instance;
  }
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_GE(inst.graph.cost(t), config.task_cost.lo);
    EXPECT_LE(inst.graph.cost(t), config.task_cost.hi);
  }
  for (const auto& [from, to] : inst.graph.dependencies()) {
    EXPECT_GE(inst.graph.dependency_cost(from, to), config.dependency_cost.lo);
    EXPECT_LE(inst.graph.dependency_cost(from, to), config.dependency_cost.hi);
  }
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    EXPECT_GE(inst.network.speed(v), config.node_speed.lo);
    EXPECT_LE(inst.network.speed(v), config.node_speed.hi);
  }
  for (NodeId a = 0; a < inst.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
      EXPECT_GE(inst.network.strength(a, b), config.link_strength.lo);
      EXPECT_LE(inst.network.strength(a, b), config.link_strength.hi);
    }
  }
}

TEST(Perturbation, GraphStaysAcyclicOverLongWalks) {
  Rng rng(3);
  const auto config = PerturbationConfig::generic();
  ProblemInstance inst = base_instance();
  for (int i = 0; i < 2000; ++i) {
    inst = perturb(inst, config, rng).instance;
    // topological_order asserts internally that the graph is a DAG; a
    // cycle would shrink the order.
    EXPECT_EQ(inst.graph.topological_order().size(), inst.graph.task_count());
  }
}

TEST(Perturbation, TaskCountNeverChanges) {
  Rng rng(4);
  const auto config = PerturbationConfig::generic();
  ProblemInstance inst = base_instance();
  const std::size_t tasks = inst.graph.task_count();
  const std::size_t nodes = inst.network.node_count();
  for (int i = 0; i < 500; ++i) {
    inst = perturb(inst, config, rng).instance;
    EXPECT_EQ(inst.graph.task_count(), tasks);
    EXPECT_EQ(inst.network.node_count(), nodes);
  }
}

TEST(Perturbation, DisabledOpsNeverFire) {
  Rng rng(5);
  PerturbationConfig config;
  config.set_enabled(PerturbationOp::kAddDependency, false);
  config.set_enabled(PerturbationOp::kRemoveDependency, false);
  ProblemInstance inst = base_instance();
  const auto deps_before = inst.graph.dependencies();
  for (int i = 0; i < 1000; ++i) {
    const auto result = perturb(inst, config, rng);
    ASSERT_TRUE(result.applied.has_value());
    EXPECT_NE(*result.applied, PerturbationOp::kAddDependency);
    EXPECT_NE(*result.applied, PerturbationOp::kRemoveDependency);
    inst = result.instance;
  }
  EXPECT_EQ(inst.graph.dependencies(), deps_before);
}

TEST(Perturbation, OnlyTaskWeightOpOnFrozenEverythingElse) {
  Rng rng(6);
  PerturbationConfig config;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) {
    config.enabled[i] = false;
  }
  config.set_enabled(PerturbationOp::kChangeTaskWeight, true);
  ProblemInstance inst = base_instance();
  for (int i = 0; i < 200; ++i) {
    const auto result = perturb(inst, config, rng);
    ASSERT_TRUE(result.applied.has_value());
    EXPECT_EQ(*result.applied, PerturbationOp::kChangeTaskWeight);
    inst = result.instance;
  }
}

TEST(Perturbation, NoEnabledOpsReturnsUnchanged) {
  Rng rng(7);
  PerturbationConfig config;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) config.enabled[i] = false;
  const auto inst = base_instance();
  const auto result = perturb(inst, config, rng);
  EXPECT_FALSE(result.applied.has_value());
  EXPECT_TRUE(result.instance.graph.structurally_equal(inst.graph));
}

TEST(Perturbation, RemoveDependencyOnEdgelessGraphFallsThrough) {
  Rng rng(8);
  PerturbationConfig config;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) config.enabled[i] = false;
  config.set_enabled(PerturbationOp::kRemoveDependency, true);
  config.set_enabled(PerturbationOp::kChangeTaskWeight, true);
  ProblemInstance inst;
  inst.graph.add_task("only", 0.5);
  inst.network = Network(2);
  // With no edges, RemoveDependency is inapplicable; the perturbation must
  // fall through to ChangeTaskWeight instead of giving up.
  for (int i = 0; i < 50; ++i) {
    const auto result = perturb(inst, config, rng);
    ASSERT_TRUE(result.applied.has_value());
    EXPECT_EQ(*result.applied, PerturbationOp::kChangeTaskWeight);
  }
}

TEST(Perturbation, AddDependencyRespectsScaledCostRange) {
  Rng rng(9);
  PerturbationConfig config;
  for (std::size_t i = 0; i < kPerturbationOpCount; ++i) config.enabled[i] = false;
  config.set_enabled(PerturbationOp::kAddDependency, true);
  config.dependency_cost = {5.0, 10.0};
  ProblemInstance inst;
  inst.graph.add_task("a", 1.0);
  inst.graph.add_task("b", 1.0);
  inst.network = Network(2);
  const auto result = perturb(inst, config, rng);
  ASSERT_TRUE(result.applied.has_value());
  const auto deps = result.instance.graph.dependencies();
  ASSERT_EQ(deps.size(), 1u);
  const double cost = result.instance.graph.dependency_cost(deps[0].first, deps[0].second);
  EXPECT_GE(cost, 5.0);
  EXPECT_LE(cost, 10.0);
}

TEST(Perturbation, StepSizeIsTenthOfRange) {
  const WeightRange unit{0.0, 1.0};
  EXPECT_DOUBLE_EQ(unit.step(), 0.1);
  const WeightRange wide{0.0, 100.0};
  EXPECT_DOUBLE_EQ(wide.step(), 10.0);
}

TEST(Perturbation, SingleWeightChangePerCall) {
  // Each perturb call changes at most one weight (or one edge).
  Rng rng(10);
  const auto config = PerturbationConfig::generic();
  const auto inst = base_instance();
  for (int trial = 0; trial < 100; ++trial) {
    const auto result = perturb(inst, config, rng);
    int changes = 0;
    for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
      if (inst.graph.cost(t) != result.instance.graph.cost(t)) ++changes;
    }
    for (NodeId v = 0; v < inst.network.node_count(); ++v) {
      if (inst.network.speed(v) != result.instance.network.speed(v)) ++changes;
    }
    for (NodeId a = 0; a < inst.network.node_count(); ++a) {
      for (NodeId b = a + 1; b < inst.network.node_count(); ++b) {
        if (inst.network.strength(a, b) != result.instance.network.strength(a, b)) ++changes;
      }
    }
    changes += static_cast<int>(std::abs(
        static_cast<long>(inst.graph.dependency_count()) -
        static_cast<long>(result.instance.graph.dependency_count())));
    for (const auto& [from, to] : inst.graph.dependencies()) {
      if (result.instance.graph.has_dependency(from, to) &&
          inst.graph.dependency_cost(from, to) !=
              result.instance.graph.dependency_cost(from, to)) {
        ++changes;
      }
    }
    EXPECT_LE(changes, 1);
  }
}

}  // namespace
}  // namespace saga::pisa
