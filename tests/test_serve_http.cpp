#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/problem_instance.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace saga::serve {
namespace {

using exp::Json;
using namespace std::chrono_literals;

HttpServer::Options ephemeral(std::size_t threads = 2) {
  HttpServer::Options options;
  options.port = 0;  // kernel-assigned; tests never collide
  options.threads = threads;
  return options;
}

std::string schedule_body() {
  return Json::object({{"scheduler", Json::string("HEFT")},
                       {"instance", instance_to_json(fig1_instance())}})
      .dump();
}

TEST(ServeHttp, HealthzAndMetricsOverTcp) {
  ScheduleService service;
  HttpServer server(ephemeral(),
                    [&service](const HttpRequest& req) { return service.handle(req); });
  ASSERT_GT(server.port(), 0);

  const HttpResponse healthz = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "{\"status\": \"ok\"}\n");

  const HttpResponse metrics = HttpClient::fetch(server.port(), "GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("saga_requests_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("saga_uptime_seconds"), std::string::npos);
}

TEST(ServeHttp, SchedulesOverTcpAndKeepsConnectionAlive) {
  ScheduleService service;
  HttpServer server(ephemeral(),
                    [&service](const HttpRequest& req) { return service.handle(req); });

  HttpClient client(server.port());
  const HttpResponse first = client.request("POST", "/v1/schedule", schedule_body());
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_NE(Json::parse(first.body).find("makespan"), nullptr);

  const HttpResponse second = client.request("POST", "/v1/schedule", schedule_body());
  EXPECT_EQ(second.body, first.body);
  // Both requests rode one keep-alive connection.
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(ServeHttp, ConcurrentIdenticalRequestsGetByteIdenticalBodies) {
  ScheduleService service;
  HttpServer server(ephemeral(4),
                    [&service](const HttpRequest& req) { return service.handle(req); });
  const std::string body = schedule_body();
  const std::string reference = HttpClient::fetch(server.port(), "POST", "/v1/schedule", body).body;

  constexpr int kThreads = 4;
  constexpr int kRequestsEach = 8;
  std::vector<std::string> bodies[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        bodies[t].push_back(client.request("POST", "/v1/schedule", body).body);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& lane : bodies) {
    for (const auto& b : lane) EXPECT_EQ(b, reference);
  }
}

TEST(ServeHttp, OversizedBodyGets413AndErrorsKeepDaemonUp) {
  ScheduleService service;
  HttpServer::Options options = ephemeral();
  options.max_body = 512;
  HttpServer server(options,
                    [&service](const HttpRequest& req) { return service.handle(req); });

  const std::string big(4096, 'x');
  const HttpResponse too_big = HttpClient::fetch(server.port(), "POST", "/v1/schedule", big);
  EXPECT_EQ(too_big.status, 413);

  const HttpResponse bad = HttpClient::fetch(server.port(), "POST", "/v1/schedule", "not json");
  EXPECT_EQ(bad.status, 400);
  const HttpResponse lost = HttpClient::fetch(server.port(), "GET", "/nope");
  EXPECT_EQ(lost.status, 404);

  // The daemon survived all of it.
  const HttpResponse ok = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(ok.status, 200);
}

TEST(ServeHttp, HandlerExceptionsBecome500) {
  HttpServer server(ephemeral(), [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  const HttpResponse resp = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("handler exploded"), std::string::npos);
}

TEST(ServeHttp, StopDrainsInFlightRequestsBeforeReturning) {
  std::promise<void> release;
  auto gate = release.get_future().share();
  std::atomic<int> handled{0};
  HttpServer server(ephemeral(2), [&](const HttpRequest&) {
    gate.wait();
    ++handled;
    HttpResponse resp;
    resp.body = "{\"done\": true}\n";
    return resp;
  });
  const std::uint16_t port = server.port();

  // A request that blocks inside the handler...
  auto request = std::async(std::launch::async, [port] {
    return HttpClient::fetch(port, "GET", "/healthz");
  });
  while (server.inflight() == 0) std::this_thread::sleep_for(1ms);

  // ...keeps stop() from completing until it finishes.
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server.stop();
    stopped.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_TRUE(server.stopping());
  EXPECT_FALSE(stopped.load());  // still draining: the handler holds the gate

  release.set_value();
  stopper.join();
  EXPECT_TRUE(stopped.load());
  EXPECT_EQ(handled.load(), 1);

  // The drained request still got its full response.
  const HttpResponse resp = request.get();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "{\"done\": true}\n");

  // After the drain the listener is gone.
  EXPECT_THROW((void)HttpClient::fetch(port, "GET", "/healthz"), std::runtime_error);
}

}  // namespace
}  // namespace saga::serve
