#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/problem_instance.hpp"
#include "serve/admission.hpp"
#include "serve/codec.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace saga::serve {
namespace {

using exp::Json;
using namespace std::chrono_literals;

HttpServer::Options ephemeral(std::size_t threads = 2) {
  HttpServer::Options options;
  options.port = 0;  // kernel-assigned; tests never collide
  options.threads = threads;
  return options;
}

std::string schedule_body() {
  return Json::object({{"scheduler", Json::string("HEFT")},
                       {"instance", instance_to_json(fig1_instance())}})
      .dump();
}

const std::string* header_of(const HttpResponse& resp, const std::string& name_lower) {
  for (const auto& [key, value] : resp.headers) {
    if (key == name_lower) return &value;
  }
  return nullptr;
}

/// Raw loopback socket, for sending deliberately malformed or partial
/// bytes the HttpClient would never produce.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void raw_send(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the server closes the connection (every exchange below
/// either provokes a framing error or carries Connection: close).
std::string raw_read_to_eof(int fd, int timeout_ms = 5000) {
  std::string out;
  char tmp[4096];
  while (timeout_ms > 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 100);
    if (r == 0) {
      timeout_ms -= 100;
      continue;
    }
    if (r < 0) break;
    const ssize_t n = ::recv(fd, tmp, sizeof tmp, 0);
    if (n <= 0) break;
    out.append(tmp, static_cast<std::size_t>(n));
  }
  return out;
}

/// One-shot raw exchange: connect, send, read to EOF, close.
std::string raw_exchange(std::uint16_t port, const std::string& request) {
  const int fd = raw_connect(port);
  raw_send(fd, request);
  const std::string response = raw_read_to_eof(fd);
  ::close(fd);
  return response;
}

TEST(ServeHttp, HealthzAndMetricsOverTcp) {
  ScheduleService service;
  HttpServer server(ephemeral(),
                    [&service](const HttpRequest& req) { return service.handle(req); });
  ASSERT_GT(server.port(), 0);

  const HttpResponse healthz = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "{\"status\": \"ok\"}\n");

  const HttpResponse metrics = HttpClient::fetch(server.port(), "GET", "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("saga_requests_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("saga_uptime_seconds"), std::string::npos);
}

TEST(ServeHttp, SchedulesOverTcpAndKeepsConnectionAlive) {
  ScheduleService service;
  HttpServer server(ephemeral(),
                    [&service](const HttpRequest& req) { return service.handle(req); });

  HttpClient client(server.port());
  const HttpResponse first = client.request("POST", "/v1/schedule", schedule_body());
  ASSERT_EQ(first.status, 200) << first.body;
  EXPECT_NE(Json::parse(first.body).find("makespan"), nullptr);

  const HttpResponse second = client.request("POST", "/v1/schedule", schedule_body());
  EXPECT_EQ(second.body, first.body);
  // Both requests rode one keep-alive connection.
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(ServeHttp, ConcurrentIdenticalRequestsGetByteIdenticalBodies) {
  ScheduleService service;
  HttpServer server(ephemeral(4),
                    [&service](const HttpRequest& req) { return service.handle(req); });
  const std::string body = schedule_body();
  const std::string reference = HttpClient::fetch(server.port(), "POST", "/v1/schedule", body).body;

  constexpr int kThreads = 4;
  constexpr int kRequestsEach = 8;
  std::vector<std::string> bodies[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        bodies[t].push_back(client.request("POST", "/v1/schedule", body).body);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& lane : bodies) {
    for (const auto& b : lane) EXPECT_EQ(b, reference);
  }
}

TEST(ServeHttp, OversizedBodyGets413AndErrorsKeepDaemonUp) {
  ScheduleService service;
  HttpServer::Options options = ephemeral();
  options.max_body = 512;
  HttpServer server(options,
                    [&service](const HttpRequest& req) { return service.handle(req); });

  const std::string big(4096, 'x');
  const HttpResponse too_big = HttpClient::fetch(server.port(), "POST", "/v1/schedule", big);
  EXPECT_EQ(too_big.status, 413);

  const HttpResponse bad = HttpClient::fetch(server.port(), "POST", "/v1/schedule", "not json");
  EXPECT_EQ(bad.status, 400);
  const HttpResponse lost = HttpClient::fetch(server.port(), "GET", "/nope");
  EXPECT_EQ(lost.status, 404);

  // The daemon survived all of it.
  const HttpResponse ok = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(ok.status, 200);
}

TEST(ServeHttp, HandlerExceptionsBecome500) {
  HttpServer server(ephemeral(), [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  const HttpResponse resp = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("handler exploded"), std::string::npos);
}

TEST(ServeHttp, ErrorBodiesEscapeQuotesAndBackslashes) {
  // Regression: error_response used to splice the exception message into
  // the JSON body with raw concatenation, so any message carrying '"' or
  // '\' produced invalid JSON on the wire.
  HttpServer server(ephemeral(), [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error(R"(bad spec "HEFT\2" at C:\tmp\spec)");
  });
  const HttpResponse resp = HttpClient::fetch(server.port(), "GET", "/healthz");
  EXPECT_EQ(resp.status, 500);
  const Json parsed = Json::parse(resp.body);  // throws if the escaping is wrong
  ASSERT_NE(parsed.find("error"), nullptr);
  EXPECT_EQ(parsed.find("error")->as_string(),
            R"(unhandled exception: bad spec "HEFT\2" at C:\tmp\spec)");
}

TEST(ServeHttp, ContentLengthIsParsedStrictly) {
  ScheduleService service;
  HttpServer server(ephemeral(),
                    [&service](const HttpRequest& req) { return service.handle(req); });
  const std::uint16_t port = server.port();

  const auto framed = [](const std::string& length_headers, const std::string& body) {
    return "POST /v1/schedule HTTP/1.1\r\nHost: x\r\nConnection: close\r\n" + length_headers +
           "\r\n" + body;
  };

  // Regression: strtoull accepted sign characters, so "-1" wrapped to
  // ~2^64 and was answered with a wrong-cause 413. All of these are 400s.
  for (const std::string bad : {"Content-Length: -1\r\n", "Content-Length: +5\r\n",
                                "Content-Length: 5 5\r\n", "Content-Length: 0x10\r\n",
                                "Content-Length: 18446744073709551616\r\n"}) {
    const std::string resp = raw_exchange(port, framed(bad, "hello"));
    EXPECT_NE(resp.find("HTTP/1.1 400 "), std::string::npos) << bad << resp;
    EXPECT_NE(resp.find("bad Content-Length"), std::string::npos) << bad << resp;
    EXPECT_EQ(resp.find("413"), std::string::npos) << bad << resp;
  }

  // Duplicate Content-Length headers that disagree are smuggling bait: 400.
  const std::string conflict = raw_exchange(
      port, framed("Content-Length: 5\r\nContent-Length: 6\r\n", "hello!"));
  EXPECT_NE(conflict.find("HTTP/1.1 400 "), std::string::npos) << conflict;
  EXPECT_NE(conflict.find("conflicting Content-Length"), std::string::npos) << conflict;

  // Duplicates that agree are framed normally (the 400 here is the JSON
  // parser's, proving the body was read and dispatched).
  const std::string agree = raw_exchange(
      port, framed("Content-Length: 5\r\nContent-Length: 5\r\n", "hello"));
  EXPECT_NE(agree.find("HTTP/1.1 400 "), std::string::npos) << agree;
  EXPECT_EQ(agree.find("Content-Length headers"), std::string::npos) << agree;
}

TEST(ServeHttp, SignalStormDoesNotErodeRequestReadBudget) {
  // Regression: the request read budget was decremented one poll slice
  // (100 ms) per wait_readable return, and EINTR returns the same 0 as a
  // timeout — under a signal storm the 30 s budget eroded at the signal
  // rate and a slow-but-live client got a spurious 408. Budgets are now
  // steady_clock deadlines, so interruptions charge only real elapsed time.
  struct sigaction noop{};
  noop.sa_handler = [](int) {};
  sigemptyset(&noop.sa_mask);
  noop.sa_flags = 0;  // deliberately no SA_RESTART: poll must see EINTR
  struct sigaction previous{};
  ASSERT_EQ(sigaction(SIGUSR1, &noop, &previous), 0);

  ScheduleService service;
  HttpServer server(ephemeral(1),
                    [&service](const HttpRequest& req) { return service.handle(req); });

  // Block SIGUSR1 in this thread (and the storm thread, which inherits the
  // mask) so the storm lands on the server's threads, which were created
  // above with it unblocked.
  sigset_t storm_set, old_mask;
  sigemptyset(&storm_set);
  sigaddset(&storm_set, SIGUSR1);
  ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &storm_set, &old_mask), 0);

  std::atomic<bool> storming{true};
  std::thread stormer([&storming] {
    while (storming.load(std::memory_order_relaxed)) {
      kill(getpid(), SIGUSR1);
      std::this_thread::sleep_for(500us);
    }
  });

  const int fd = raw_connect(server.port());
  // Start a request but stall before completing the head: the worker is
  // now in flight, polling under the storm.
  raw_send(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n");
  std::this_thread::sleep_for(1200ms);
  raw_send(fd, "\r\n");
  const std::string response = raw_read_to_eof(fd);
  ::close(fd);

  storming.store(false, std::memory_order_relaxed);
  stormer.join();
  ASSERT_EQ(pthread_sigmask(SIG_SETMASK, &old_mask, nullptr), 0);
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  // 1.2 s of storm must not exhaust a 30 s budget (the old arithmetic
  // burned it ~100-200x fast and answered 408).
  EXPECT_NE(response.find("HTTP/1.1 200 "), std::string::npos) << response;
  EXPECT_EQ(response.find("408"), std::string::npos) << response;
}

TEST(ServeHttp, AcceptBackstopShedsWithCanned429AndRecovers) {
  std::promise<void> release;
  auto gate = release.get_future().share();
  AdmissionController admission(AdmissionController::Limits{1, 0});
  HttpServer::Options options = ephemeral(1);
  options.max_pending = 1;
  options.admission = &admission;
  HttpServer server(options, [&gate](const HttpRequest&) {
    gate.wait();
    HttpResponse resp;
    resp.body = "{\"done\": true}\n";
    return resp;
  });
  const std::uint16_t port = server.port();

  // First connection occupies the lone worker inside the handler...
  auto first = std::async(std::launch::async,
                          [port] { return HttpClient::fetch(port, "GET", "/healthz"); });
  while (server.inflight() == 0) std::this_thread::sleep_for(1ms);
  // ...the second fills the one pending slot...
  auto second = std::async(std::launch::async,
                           [port] { return HttpClient::fetch(port, "GET", "/healthz"); });
  while (server.pool().queue_depth() == 0) std::this_thread::sleep_for(1ms);

  // ...so the third is shed at accept with the canned deterministic 429.
  const HttpResponse shed = HttpClient::fetch(port, "GET", "/healthz");
  EXPECT_EQ(shed.status, 429);
  EXPECT_EQ(shed.body, AdmissionController::shed_body());
  EXPECT_NE(header_of(shed, "retry-after"), nullptr);
  EXPECT_EQ(server.connections_shed(), 1u);
  EXPECT_EQ(admission.shed_total(), 1u);

  // The queued and in-flight requests were never disturbed, and new
  // connections are admitted again once the backlog drains.
  release.set_value();
  EXPECT_EQ(first.get().status, 200);
  EXPECT_EQ(second.get().status, 200);
  const HttpResponse after = HttpClient::fetch(port, "GET", "/healthz");
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(server.connections_shed(), 1u);
}

TEST(ServeHttp, StreamedCompareIsChunkedAndByteIdenticalOverTcp) {
  const std::string body =
      R"({"schedulers": ["HEFT", "CPoP", "MCT", "HEFT", "CPoP", "MCT", "HEFT", "CPoP"],)"
      R"( "dataset": "chains?length=8"})";

  ScheduleService streaming;  // default threshold: 8 schedulers stream
  HttpServer server(ephemeral(),
                    [&streaming](const HttpRequest& req) { return streaming.handle(req); });

  ScheduleService::Options buffered_options;
  buffered_options.stream_rows_threshold = 0;
  ScheduleService buffered(buffered_options);
  HttpServer buffered_server(
      ephemeral(), [&buffered](const HttpRequest& req) { return buffered.handle(req); });
  const std::string reference =
      HttpClient::fetch(buffered_server.port(), "POST", "/v1/compare", body).body;

  // The chunked response de-chunks to the buffered bytes, and the
  // connection stays usable afterwards (framing consumed exactly).
  HttpClient client(server.port());
  const HttpResponse streamed = client.request("POST", "/v1/compare", body);
  EXPECT_EQ(streamed.status, 200);
  const std::string* te = header_of(streamed, "transfer-encoding");
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(*te, "chunked");
  EXPECT_EQ(streamed.body, reference);
  EXPECT_EQ(client.request("GET", "/healthz").status, 200);
  EXPECT_EQ(server.connections_accepted(), 1u);

  // HTTP/1.0 requesters cannot parse chunked framing; they get the same
  // bytes buffered with a Content-Length instead.
  const std::string legacy = raw_exchange(
      server.port(), "POST /v1/compare HTTP/1.0\r\nHost: x\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(legacy.find("HTTP/1.1 200 "), std::string::npos) << legacy;
  EXPECT_EQ(legacy.find("Transfer-Encoding"), std::string::npos) << legacy;
  EXPECT_NE(legacy.find("Content-Length: "), std::string::npos) << legacy;
  const std::size_t split = legacy.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_EQ(legacy.substr(split + 4), reference);
}

TEST(ServeHttp, StopDrainsInFlightRequestsBeforeReturning) {
  std::promise<void> release;
  auto gate = release.get_future().share();
  std::atomic<int> handled{0};
  HttpServer server(ephemeral(2), [&](const HttpRequest&) {
    gate.wait();
    ++handled;
    HttpResponse resp;
    resp.body = "{\"done\": true}\n";
    return resp;
  });
  const std::uint16_t port = server.port();

  // A request that blocks inside the handler...
  auto request = std::async(std::launch::async, [port] {
    return HttpClient::fetch(port, "GET", "/healthz");
  });
  while (server.inflight() == 0) std::this_thread::sleep_for(1ms);

  // ...keeps stop() from completing until it finishes.
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server.stop();
    stopped.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_TRUE(server.stopping());
  EXPECT_FALSE(stopped.load());  // still draining: the handler holds the gate

  release.set_value();
  stopper.join();
  EXPECT_TRUE(stopped.load());
  EXPECT_EQ(handled.load(), 1);

  // The drained request still got its full response.
  const HttpResponse resp = request.get();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "{\"done\": true}\n");

  // After the drain the listener is gone.
  EXPECT_THROW((void)HttpClient::fetch(port, "GET", "/healthz"), std::runtime_error);
}

}  // namespace
}  // namespace saga::serve
