#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "datasets/families.hpp"
#include "sched/registry.hpp"

/// The HEFT-vs-CPoP case study of Sections V and VI-B.

namespace saga {
namespace {

TEST(Fig3, InstanceShapeMatchesPaper) {
  const auto inst = families::fig3_instance(false);
  ASSERT_EQ(inst.graph.task_count(), 5u);
  EXPECT_EQ(inst.graph.dependency_count(), 6u);
  for (TaskId t = 0; t < 5; ++t) EXPECT_DOUBLE_EQ(inst.graph.cost(t), 3.0);
  EXPECT_DOUBLE_EQ(inst.graph.dependency_cost(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(inst.graph.dependency_cost(1, 4), 3.0);
  EXPECT_TRUE(inst.network.homogeneous_speeds());
  EXPECT_TRUE(inst.network.homogeneous_strengths());
}

TEST(Fig3, ModifiedNetworkWeakensNode3Links) {
  const auto inst = families::fig3_instance(true);
  EXPECT_DOUBLE_EQ(inst.network.strength(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(inst.network.strength(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(inst.network.strength(1, 2), 0.5);
}

TEST(Fig3, KnownMakespansUnderOurTieBreaks) {
  // The paper's drawn schedules (HEFT 16 vs CPoP 15 on the modified
  // network) depend on unspecified tie-breaking among the three identical
  // middle tasks; with our smallest-id tie-breaks both algorithms avoid the
  // weakened node and achieve 14 on both networks. The qualitative
  // ranking-flip phenomenon is demonstrated by PISA below instead.
  for (bool weakened : {false, true}) {
    const auto inst = families::fig3_instance(weakened);
    const auto heft = make_scheduler("HEFT")->schedule(inst);
    const auto cpop = make_scheduler("CPoP")->schedule(inst);
    EXPECT_TRUE(heft.validate(inst).ok);
    EXPECT_TRUE(cpop.validate(inst).ok);
    EXPECT_DOUBLE_EQ(heft.makespan(), 14.0);
    EXPECT_DOUBLE_EQ(cpop.makespan(), 14.0);
  }
}

TEST(Fig3, SerialBoundIsFifteen) {
  // Sanity anchor from the paper's Gantt charts: full serialisation on one
  // unit-speed node takes 15.
  const auto inst = families::fig3_instance(true);
  EXPECT_DOUBLE_EQ(make_scheduler("FastestNode")->schedule(inst).makespan(), 15.0);
}

TEST(CaseStudy, PisaFindsInstanceWhereHeftLosesToCpop) {
  // Fig. 5's phenomenon, rediscovered: a small instance where HEFT is
  // noticeably worse than CPoP.
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  pisa::PisaOptions options;
  options.restarts = 5;
  const auto result = pisa::run_pisa(*heft, *cpop, options, 2024);
  EXPECT_GT(result.best_ratio, 1.2);
  // Witness replays: the instance genuinely produces the ratio.
  EXPECT_NEAR(pisa::makespan_ratio(*heft, *cpop, result.best_instance),
              result.best_ratio, 1e-9);
}

TEST(CaseStudy, PisaFindsInstanceWhereCpopLosesToHeft) {
  // Fig. 6's phenomenon: committing the critical path to the fastest node
  // backfires for CPoP.
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  pisa::PisaOptions options;
  options.restarts = 5;
  const auto result = pisa::run_pisa(*cpop, *heft, options, 2025);
  EXPECT_GT(result.best_ratio, 1.2);
}

TEST(CaseStudy, NeitherAlgorithmDominatesTheOther) {
  // Section VI-A: "we don't see many algorithms that are strictly better
  // or worse than others" — both directions find ratios above 1.
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  pisa::PisaOptions options;
  options.restarts = 3;
  const double heft_worst = pisa::run_pisa(*heft, *cpop, options, 1).best_ratio;
  const double cpop_worst = pisa::run_pisa(*cpop, *heft, options, 1).best_ratio;
  EXPECT_GT(heft_worst, 1.0);
  EXPECT_GT(cpop_worst, 1.0);
}

}  // namespace
}  // namespace saga
