#include <gtest/gtest.h>

#include "sched/registry.hpp"
#include "sched/schedule_io.hpp"

namespace saga {
namespace {

TEST(ScheduleIo, RoundTripsHeftOnFig1) {
  const auto inst = fig1_instance();
  const Schedule original = make_scheduler("HEFT")->schedule(inst);
  const Schedule copy = schedule_from_string(schedule_to_string(original));
  ASSERT_EQ(copy.size(), original.size());
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(copy.of_task(t).node, original.of_task(t).node);
    EXPECT_EQ(copy.of_task(t).start, original.of_task(t).start);
    EXPECT_EQ(copy.of_task(t).finish, original.of_task(t).finish);
  }
  EXPECT_TRUE(copy.validate(inst).ok);
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  const Schedule copy = schedule_from_string(schedule_to_string(Schedule{}));
  EXPECT_EQ(copy.size(), 0u);
}

TEST(ScheduleIo, PreservesExactDoubles) {
  Schedule s;
  s.add({0, 1, 0.1 + 0.2, 1e-300});
  const Schedule copy = schedule_from_string(schedule_to_string(s));
  EXPECT_EQ(copy.of_task(0).start, 0.1 + 0.2);
  EXPECT_EQ(copy.of_task(0).finish, 1e-300);
}

TEST(ScheduleIo, RejectsWrongMagic) {
  EXPECT_THROW((void)schedule_from_string("saga-instance v1\n"), std::runtime_error);
}

TEST(ScheduleIo, RejectsTruncation) {
  const std::string text = "saga-schedule v1\nassignments 2\nassign 0 0 0 1\n";
  EXPECT_THROW((void)schedule_from_string(text), std::runtime_error);
}

TEST(ScheduleIo, RejectsMalformedRows) {
  const std::string text = "saga-schedule v1\nassignments 1\nassign 0 zero 0 1\n";
  EXPECT_THROW((void)schedule_from_string(text), std::runtime_error);
}

TEST(ScheduleIo, SkipsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\nsaga-schedule v1\n\nassignments 1\n# another\nassign 3 1 0.5 1.5\n";
  const Schedule s = schedule_from_string(text);
  EXPECT_EQ(s.of_task(3).node, 1u);
}

TEST(ScheduleIo, LoadedScheduleFailsValidationOnWrongInstance) {
  // A schedule for Fig. 1 does not validate against a 1-node instance.
  const Schedule original = make_scheduler("HEFT")->schedule(fig1_instance());
  const Schedule copy = schedule_from_string(schedule_to_string(original));
  ProblemInstance other;
  other.graph.add_task("x", 1.0);
  other.network = Network(1);
  EXPECT_FALSE(copy.validate(other).ok);
}

}  // namespace
}  // namespace saga
