# End-to-end smoke of sharded, resumable runs through the CLI, run by ctest
# in script mode:
#   cmake -DSAGA_CLI=<path> -DWORK_DIR=<scratch> -DSPECS_DIR=<examples/specs> \
#         -P cli_shard_smoke.cmake
# Exercises: a monolithic `saga run` with csv/json sinks, a 3-shard
# `saga run --shard i/3 --out` decomposition, `saga merge` back to
# byte-identical artifacts, torn-record crash recovery via `--resume`, and
# the usage/error contracts of the new flags.

foreach(var SAGA_CLI WORK_DIR SPECS_DIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(saga_expect_success name)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' failed (exit ${rv})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_output "${out}" PARENT_SCOPE)
endfunction()

function(saga_expect_failure name expected_code stderr_pattern)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' unexpectedly succeeded")
  endif()
  if(NOT rv EQUAL ${expected_code})
    message(FATAL_ERROR "step '${name}' exited ${rv}, expected ${expected_code}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${stderr_pattern}")
    message(FATAL_ERROR "step '${name}' stderr does not match '${stderr_pattern}':\n${err}")
  endif()
endfunction()

function(expect_identical a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${a} and ${b} differ (expected byte-identical)")
  endif()
endfunction()

set(spec ${SPECS_DIR}/fig02_tiny.json)

# 1. Monolithic golden run with csv + json artifacts.
saga_expect_success(mono run ${spec}
  --set csv=${WORK_DIR}/mono.csv --set json=${WORK_DIR}/mono.json)
if(NOT EXISTS ${WORK_DIR}/mono.csv OR NOT EXISTS ${WORK_DIR}/mono.json)
  message(FATAL_ERROR "monolithic run did not write its csv/json artifacts")
endif()

# 2. The same experiment as three shards, each persisted to a result store.
foreach(i RANGE 1 3)
  saga_expect_success(shard_${i} run ${spec} --shard ${i}/3 --out ${WORK_DIR}/store_${i})
  if(NOT EXISTS ${WORK_DIR}/store_${i}/spec.json)
    message(FATAL_ERROR "shard ${i} store has no spec.json")
  endif()
  if(NOT shard_${i}_output MATCHES "shard ${i}/3")
    message(FATAL_ERROR "shard ${i} run did not report its shard:\n${shard_${i}_output}")
  endif()
endforeach()

# 3. Merge recombines the shards into byte-identical artifacts.
saga_expect_success(merge merge
  ${WORK_DIR}/store_1 ${WORK_DIR}/store_2 ${WORK_DIR}/store_3
  --csv ${WORK_DIR}/merged.csv --json ${WORK_DIR}/merged.json)
expect_identical(${WORK_DIR}/mono.csv ${WORK_DIR}/merged.csv)
expect_identical(${WORK_DIR}/mono.json ${WORK_DIR}/merged.json)

# 4. Crash recovery: tear the trailing bytes off one record, then --resume
# re-runs only that cell and converges to the same artifacts.
saga_expect_success(full run ${spec} --out ${WORK_DIR}/full)
set(victim ${WORK_DIR}/full/cells/c00000003.jsonl)
if(NOT EXISTS ${victim})
  message(FATAL_ERROR "expected cell record ${victim} is missing")
endif()
file(READ ${victim} record)
string(LENGTH "${record}" record_len)
math(EXPR torn_len "${record_len} - 9")
string(SUBSTRING "${record}" 0 ${torn_len} torn)
file(WRITE ${victim} "${torn}")
saga_expect_success(resume run ${spec} --out ${WORK_DIR}/full --resume
  --set csv=${WORK_DIR}/resumed.csv --set json=${WORK_DIR}/resumed.json)
if(NOT resume_output MATCHES "ran 1 of")
  message(FATAL_ERROR "resume did not re-run exactly the torn cell:\n${resume_output}")
endif()
if(NOT resume_output MATCHES "1 torn record")
  message(FATAL_ERROR "resume did not report the torn record:\n${resume_output}")
endif()
expect_identical(${WORK_DIR}/mono.csv ${WORK_DIR}/resumed.csv)
expect_identical(${WORK_DIR}/mono.json ${WORK_DIR}/resumed.json)

# 5. Error contracts: usage errors exit 2, incomplete merges exit 1.
saga_expect_failure(bad_shard 2 "invalid shard" run ${spec} --shard 4/3 --out ${WORK_DIR}/x)
saga_expect_failure(shard_without_out 2 "needs --out" run ${spec} --shard 1/3)
saga_expect_failure(resume_without_out 2 "needs --out" run ${spec} --resume)
saga_expect_failure(merge_usage 2 "usage: saga merge" merge)
saga_expect_failure(merge_incomplete 1 "cells missing" merge ${WORK_DIR}/store_1)
saga_expect_failure(merge_not_a_store 1 "not a result store" merge ${WORK_DIR})

message(STATUS "cli_shard_smoke: all steps passed")
