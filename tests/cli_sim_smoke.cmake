# End-to-end smoke of the discrete-event simulate mode through the CLI,
# run by ctest in script mode:
#   cmake -DSAGA_CLI=<path> -DWORK_DIR=<scratch> -DSPECS_DIR=<examples/specs> \
#         -P cli_sim_smoke.cmake
# Exercises: `saga simulate` on the checked-in example scenario (dry-run,
# then a monolithic run with csv/json sinks), a 2-shard decomposition merged
# back to byte-identical artifacts, and the command's error contracts
# (usage exits 2; a spec declaring a different mode is rejected).

foreach(var SAGA_CLI WORK_DIR SPECS_DIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(saga_expect_success name)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' failed (exit ${rv})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_output "${out}" PARENT_SCOPE)
endfunction()

function(saga_expect_failure name expected_code stderr_pattern)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_QUIET
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' unexpectedly succeeded")
  endif()
  if(NOT rv EQUAL ${expected_code})
    message(FATAL_ERROR "step '${name}' exited ${rv}, expected ${expected_code}\nstderr:\n${err}")
  endif()
  if(NOT err MATCHES "${stderr_pattern}")
    message(FATAL_ERROR "step '${name}' stderr does not match '${stderr_pattern}':\n${err}")
  endif()
endfunction()

function(expect_identical a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${a} and ${b} differ (expected byte-identical)")
  endif()
endfunction()

set(spec ${SPECS_DIR}/sim_tiny.json)

# 1. Dry run: the scenario validates and is described without simulating.
saga_expect_success(dry simulate ${spec} --dry-run)
if(NOT dry_output MATCHES "scenario:")
  message(FATAL_ERROR "dry run did not describe the scenario:\n${dry_output}")
endif()
if(NOT dry_output MATCHES "dry run: spec is valid")
  message(FATAL_ERROR "dry run did not report validity:\n${dry_output}")
endif()

# 2. Monolithic golden run with csv + json artifacts.
saga_expect_success(mono simulate ${spec}
  --set csv=${WORK_DIR}/mono.csv --set json=${WORK_DIR}/mono.json)
if(NOT EXISTS ${WORK_DIR}/mono.csv OR NOT EXISTS ${WORK_DIR}/mono.json)
  message(FATAL_ERROR "monolithic simulate did not write its csv/json artifacts")
endif()
if(NOT mono_output MATCHES "makespan")
  message(FATAL_ERROR "simulate did not render its report table:\n${mono_output}")
endif()

# 3. The same scenario as two shards, merged to byte-identical artifacts.
foreach(i RANGE 1 2)
  saga_expect_success(shard_${i} simulate ${spec}
    --shard ${i}/2 --out ${WORK_DIR}/store_${i})
  if(NOT EXISTS ${WORK_DIR}/store_${i}/spec.json)
    message(FATAL_ERROR "shard ${i} store has no spec.json")
  endif()
endforeach()
saga_expect_success(merge merge ${WORK_DIR}/store_1 ${WORK_DIR}/store_2
  --csv ${WORK_DIR}/merged.csv --json ${WORK_DIR}/merged.json)
expect_identical(${WORK_DIR}/mono.csv ${WORK_DIR}/merged.csv)
expect_identical(${WORK_DIR}/mono.json ${WORK_DIR}/merged.json)

# 4. Error contracts: usage errors exit 2; a spec that declares a different
# mode is refused (exit 1) instead of being silently re-run as a simulation.
saga_expect_failure(no_spec 2 "usage: saga simulate" simulate)
saga_expect_failure(mode_conflict 1 "use `saga run` for other modes"
  simulate ${SPECS_DIR}/fig02_tiny.json)

message(STATUS "cli_sim_smoke: all steps passed")
