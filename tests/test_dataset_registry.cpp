// Descriptor-based dataset registry: tag enumeration consistency with the
// historical rosters, alias/case-insensitive resolution with nearest-name
// suggestions, parameterized sources (width/CCR/topology overrides), the
// erdos extension family, composable wrapping sources (perturbed, noisy),
// and streaming-vs-eager benchmarking equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/benchmarking.hpp"
#include "datasets/registry.hpp"
#include "exp/experiment.hpp"

namespace {

using namespace saga;

// --- rosters and resolution ------------------------------------------------

TEST(DatasetRegistry, Table2TagMatchesHistoricalRoster) {
  const auto names = datasets::DatasetRegistry::instance().names("table2");
  std::vector<std::string> expected;
  for (const auto& spec : datasets::all_dataset_specs()) expected.push_back(spec.name);
  EXPECT_EQ(names, expected);
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(names.front(), "in_trees");
  EXPECT_EQ(names.back(), "train");
}

TEST(DatasetRegistry, WorkflowTagMatchesHistoricalRoster) {
  EXPECT_EQ(datasets::DatasetRegistry::instance().names("workflow"),
            datasets::workflow_dataset_names());
}

TEST(DatasetRegistry, TagUnionCoversStandardTags) {
  const auto tags = datasets::DatasetRegistry::instance().tags();
  for (const char* tag :
       {"table2", "random", "workflow", "iot", "extension", "wrapper", "adversarial",
        "stochastic"}) {
    EXPECT_NE(std::find(tags.begin(), tags.end(), tag), tags.end()) << tag;
  }
}

TEST(DatasetRegistry, ResolvesCaseInsensitivelyAndThroughAliases) {
  auto& registry = datasets::DatasetRegistry::instance();
  EXPECT_EQ(registry.resolve("MONTAGE").name, "montage");
  EXPECT_EQ(registry.resolve("Erdos_Renyi").name, "erdos");
  EXPECT_EQ(registry.resolve("gnp").name, "erdos");
  EXPECT_EQ(registry.resolve("stochastic").name, "noisy");
}

TEST(DatasetRegistry, UnknownNameSuggestsNearestAndListsTags) {
  try {
    (void)datasets::DatasetRegistry::instance().resolve("montag");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean 'montage'?"), std::string::npos) << what;
    EXPECT_NE(what.find("valid tags"), std::string::npos) << what;
  }
}

TEST(DatasetRegistry, UnknownParamSuggestsNearestAndListsValid) {
  try {
    (void)datasets::DatasetRegistry::instance().make("montage?nn=5", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no parameter 'nn'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'n'?"), std::string::npos) << what;
    EXPECT_NE(what.find("valid parameters"), std::string::npos) << what;
  }
}

TEST(DatasetRegistry, AddRejectsCollisionsAndMissingFactories) {
  datasets::DatasetRegistry registry;
  datasets::DatasetDesc desc;
  desc.name = "dummy";
  desc.aliases = {"dm"};
  desc.factory = [](const datasets::DatasetParams&, std::uint64_t) {
    return datasets::DatasetRegistry::instance().make("chains", 1);
  };
  registry.add(desc);
  EXPECT_THROW(registry.add(desc), std::invalid_argument);  // same name
  datasets::DatasetDesc alias_clash = desc;
  alias_clash.name = "other";
  alias_clash.aliases = {"DUMMY"};  // case-insensitive collision
  EXPECT_THROW(registry.add(alias_clash), std::invalid_argument);
  datasets::DatasetDesc no_factory;
  no_factory.name = "nofactory";
  EXPECT_THROW(registry.add(no_factory), std::invalid_argument);
}

// --- parameterized sources -------------------------------------------------

TEST(DatasetSources, SourcesAreDeterministicAndSized) {
  auto& registry = datasets::DatasetRegistry::instance();
  for (const char* spec : {"montage", "montage?n=30", "erdos?n=40&p=0.2",
                           "perturbed?base=chains&level=0.5", "noisy?base=blast&cv=0.3"}) {
    const auto a = registry.make(spec, 7);
    const auto b = registry.make(spec, 7);
    EXPECT_GT(a->size(), 0u) << spec;
    for (std::size_t i = 0; i < 2; ++i) {
      const auto x = a->generate(i);
      const auto y = b->generate(i);
      EXPECT_TRUE(x.graph.structurally_equal(y.graph)) << spec << "[" << i << "]";
      EXPECT_EQ(x.network.node_count(), y.network.node_count()) << spec;
    }
  }
}

TEST(DatasetSources, WidthOverridesControlGraphSize) {
  auto& registry = datasets::DatasetRegistry::instance();
  // montage?n=30: 30 mProject + 29 mDiffFit + 30 mBackground + 7 fixed.
  const auto montage = registry.make("montage?n=30", 3)->generate(0);
  EXPECT_EQ(montage.graph.task_count(), 30u + 29u + 30u + 6u);
  // in_trees?levels=3&branch=2: 1 + 2 + 4 tasks.
  const auto tree = registry.make("in_trees?levels=3&branch=2", 3)->generate(0);
  EXPECT_EQ(tree.graph.task_count(), 7u);
  EXPECT_EQ(tree.graph.dependency_count(), 6u);
  // chains?chains=4&length=5: 20 tasks in 4 chains.
  const auto chains = registry.make("chains?chains=4&length=5", 3)->generate(0);
  EXPECT_EQ(chains.graph.task_count(), 20u);
  EXPECT_EQ(chains.graph.dependency_count(), 16u);
  // genome?n=6&analyses=2: 6 extractors + merge + sifting + 2x2 analyses.
  const auto genome = registry.make("genome?n=6&analyses=2", 3)->generate(0);
  EXPECT_EQ(genome.graph.task_count(), 6u + 2u + 4u);
}

TEST(DatasetSources, NetworkOverridesControlTopology) {
  auto& registry = datasets::DatasetRegistry::instance();
  const auto workflow = registry.make("blast?min_nodes=6&max_nodes=6", 5)->generate(1);
  EXPECT_EQ(workflow.network.node_count(), 6u);
  const auto tree = registry.make("out_trees?nodes=9", 5)->generate(1);
  EXPECT_EQ(tree.network.node_count(), 9u);
  const auto iot = registry.make("etl?edge=10&fog=2&cloud=1", 5)->generate(1);
  EXPECT_EQ(iot.network.node_count(), 13u);
}

TEST(DatasetSources, CcrOverrideHomogenizesLinks) {
  auto& registry = datasets::DatasetRegistry::instance();
  const auto inst = registry.make("montage?ccr=1.0", 11)->generate(0);
  double strength = 0.0;
  const auto& net = inst.network;
  for (NodeId a = 0; a < net.node_count(); ++a) {
    for (NodeId b = a + 1; b < net.node_count(); ++b) {
      if (strength == 0.0) strength = net.strength(a, b);
      EXPECT_DOUBLE_EQ(net.strength(a, b), strength);
    }
  }
  EXPECT_TRUE(std::isfinite(strength));  // Chameleon default is infinite
  EXPECT_GT(strength, 0.0);
}

TEST(DatasetSources, ErdosRespectsDensityAndHeterogeneity) {
  auto& registry = datasets::DatasetRegistry::instance();
  const auto sparse = registry.make("erdos?n=50&p=0.05", 9)->generate(0);
  const auto dense = registry.make("erdos?n=50&p=0.5", 9)->generate(0);
  EXPECT_EQ(sparse.graph.task_count(), 50u);
  EXPECT_LT(sparse.graph.dependency_count(), dense.graph.dependency_count());
  EXPECT_EQ(dense.graph.topological_order().size(), dense.graph.task_count());

  const auto hetero = registry.make("erdos?n=10&hetero=8&nodes=12", 9)->generate(0);
  double min_speed = 1e300;
  double max_speed = 0.0;
  for (NodeId v = 0; v < hetero.network.node_count(); ++v) {
    min_speed = std::min(min_speed, hetero.network.speed(v));
    max_speed = std::max(max_speed, hetero.network.speed(v));
  }
  EXPECT_GT(max_speed / min_speed, 2.0);  // spread far beyond the clipped Gaussian
}

TEST(DatasetSources, OutOfRangeParametersAreRejected) {
  auto& registry = datasets::DatasetRegistry::instance();
  for (const char* spec :
       {"erdos?p=1.5", "erdos?n=0", "erdos?hetero=0.5", "montage?ccr=-1",
        "montage?min_nodes=9&max_nodes=3", "in_trees?levels=60", "perturbed?level=99",
        "noisy?cv=3", "etl?edge=999999"}) {
    EXPECT_THROW((void)registry.make(spec, 1), std::invalid_argument) << spec;
  }
}

// --- wrapping sources ------------------------------------------------------

TEST(DatasetWrappers, RequireABaseAndResolveItThroughTheRegistry) {
  auto& registry = datasets::DatasetRegistry::instance();
  EXPECT_THROW((void)registry.make("perturbed", 1), std::invalid_argument);
  EXPECT_THROW((void)registry.make("noisy?cv=0.1", 1), std::invalid_argument);
  EXPECT_THROW((void)registry.make("noisy?base=nope", 1), std::invalid_argument);
  const auto wrapped = registry.make("noisy?base=MONTAGE", 1);  // alias resolution
  EXPECT_EQ(wrapped->size(), registry.make("montage", 1)->size());
}

TEST(DatasetWrappers, PerturbedChangesTheInstanceButStaysAcyclic) {
  auto& registry = datasets::DatasetRegistry::instance();
  const auto base = registry.make("chains", 21);
  const auto perturbed = registry.make("perturbed?base=chains&level=1.0", 21);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto original = base->generate(i);
    const auto mutated = perturbed->generate(i);
    EXPECT_EQ(mutated.graph.topological_order().size(), mutated.graph.task_count()) << i;
    EXPECT_EQ(mutated.network.node_count(), original.network.node_count()) << i;
    if (!mutated.graph.structurally_equal(original.graph)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(DatasetWrappers, NoisyPreservesTopologyAndPerturbsWeights) {
  auto& registry = datasets::DatasetRegistry::instance();
  const auto base = registry.make("blast", 5)->generate(0);
  const auto noisy = registry.make("noisy?base=blast&cv=0.2", 5)->generate(0);
  ASSERT_EQ(noisy.graph.task_count(), base.graph.task_count());
  ASSERT_EQ(noisy.graph.dependency_count(), base.graph.dependency_count());
  std::size_t changed = 0;
  for (TaskId t = 0; t < base.graph.task_count(); ++t) {
    if (noisy.graph.cost(t) != base.graph.cost(t)) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST(DatasetWrappers, NestedBaseSpecsCarryParameters) {
  // The base value may itself be a spec (no '&' inside): montage?n=20.
  const auto source =
      datasets::DatasetRegistry::instance().make("noisy?base=montage?n=20&cv=0.1", 2);
  const auto inst = source->generate(0);
  EXPECT_EQ(inst.graph.task_count(), 20u + 19u + 20u + 6u);
}

// --- streaming-vs-eager equivalence ----------------------------------------

TEST(StreamingBenchmark, MatchesEagerBenchmarkBitForBit) {
  const std::vector<std::string> roster = {"HEFT", "CPoP", "MinMin"};
  const auto eager = analysis::benchmark_dataset(datasets::generate_dataset("chains", 42, 6),
                                                 roster, 42);
  const auto source = datasets::DatasetRegistry::instance().make("chains", 42);
  const auto streamed = analysis::benchmark_source(*source, "chains", 6, roster, 42);
  ASSERT_EQ(streamed.per_scheduler.size(), eager.per_scheduler.size());
  for (std::size_t s = 0; s < eager.per_scheduler.size(); ++s) {
    EXPECT_EQ(streamed.per_scheduler[s].ratios, eager.per_scheduler[s].ratios)
        << roster[s];
  }
}

// --- experiment-spec integration -------------------------------------------

TEST(ExperimentDatasetSpecs, SelectionsAcceptSpecStringsAndRejectBadOnes) {
  exp::ExperimentSpec spec;
  spec.mode = exp::Mode::kBenchmark;
  spec.schedulers = {"HEFT", "CPoP"};
  spec.datasets = {{"montage?n=10&ccr=1", 4}, {"erdos?n=16&p=0.2", 4}};
  EXPECT_NO_THROW(spec.validate());

  spec.datasets = {{"montage?nn=10", 4}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.datasets = {{"montag", 4}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ExperimentDatasetSpecs, CountValidationReportsPosition) {
  const auto json = exp::Json::parse(R"({
  "mode": "benchmark",
  "schedulers": ["HEFT"],
  "datasets": [{"name": "chains", "count": -3}]
})");
  try {
    (void)exp::ExperimentSpec::from_json(json);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-negative integer"), std::string::npos) << what;
    EXPECT_NE(what.find("at line 4"), std::string::npos) << what;
  }
  // Overflowing counts are rejected too.
  EXPECT_THROW(
      (void)exp::ExperimentSpec::from_json(exp::Json::parse(
          R"({"mode": "benchmark", "schedulers": ["HEFT"],
              "datasets": [{"name": "chains", "count": 1e300}]})")),
      std::invalid_argument);
}

}  // namespace
