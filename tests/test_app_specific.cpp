#include <gtest/gtest.h>

#include "core/app_specific.hpp"
#include "datasets/workflows/blast.hpp"
#include "sched/registry.hpp"

namespace saga::pisa {
namespace {

TEST(AppSpecificConfig, ScalesRangesToTraceStats) {
  workflows::TraceStats stats;
  stats.min_runtime = 2.0;
  stats.max_runtime = 500.0;
  stats.min_io = 1.0;
  stats.max_io = 300.0;
  stats.min_speed = 0.5;
  stats.max_speed = 1.5;
  const auto config = app_specific_config(stats);
  EXPECT_DOUBLE_EQ(config.task_cost.lo, 2.0);
  EXPECT_DOUBLE_EQ(config.task_cost.hi, 500.0);
  EXPECT_DOUBLE_EQ(config.dependency_cost.lo, 1.0);
  EXPECT_DOUBLE_EQ(config.dependency_cost.hi, 300.0);
  EXPECT_DOUBLE_EQ(config.node_speed.lo, 0.5);
  EXPECT_DOUBLE_EQ(config.node_speed.hi, 1.5);
}

TEST(AppSpecificConfig, DisablesStructuralAndLinkOps) {
  const auto config = app_specific_config(workflows::TraceStats{});
  EXPECT_FALSE(config.is_enabled(PerturbationOp::kAddDependency));
  EXPECT_FALSE(config.is_enabled(PerturbationOp::kRemoveDependency));
  EXPECT_FALSE(config.is_enabled(PerturbationOp::kChangeNetworkEdgeWeight));
  EXPECT_TRUE(config.is_enabled(PerturbationOp::kChangeTaskWeight));
  EXPECT_TRUE(config.is_enabled(PerturbationOp::kChangeNetworkNodeWeight));
  EXPECT_TRUE(config.is_enabled(PerturbationOp::kChangeDependencyWeight));
}

TEST(AppSpecificOptions, InitialInstancesHaveRequestedCcr) {
  const auto options = app_specific_options("blast", 2.0, 42);
  ASSERT_TRUE(static_cast<bool>(options.make_initial));
  for (std::uint64_t run = 0; run < 3; ++run) {
    const auto inst = options.make_initial(run);
    EXPECT_NEAR(inst.ccr(), 2.0, 1e-9);
    EXPECT_TRUE(inst.network.homogeneous_strengths());
  }
}

TEST(AppSpecificOptions, UnknownWorkflowThrows) {
  EXPECT_THROW((void)app_specific_options("nope", 1.0, 1), std::invalid_argument);
}

TEST(AppSpecificPisa, PreservesWorkflowStructureDuringSearch) {
  // Run a short app-specific PISA and check the witness instance still has
  // the srasearch shape (structure ops are disabled).
  auto options = app_specific_options("srasearch", 1.0, 7);
  options.restarts = 1;
  options.params.max_iterations = 60;
  const auto heft = make_scheduler("HEFT");
  const auto cpop = make_scheduler("CPoP");
  const auto result = run_pisa(*heft, *cpop, options, 7);
  const auto& g = result.best_instance.graph;
  ASSERT_EQ(g.sources().size(), 1u);
  ASSERT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.task_count() % 4, 0u);  // 4n + 4
  // Link homogeneity (pinned by the CCR) survives the search.
  EXPECT_TRUE(result.best_instance.network.homogeneous_strengths());
}

TEST(AppSpecificPisa, WeightsStayInsideTraceEnvelope) {
  auto options = app_specific_options("blast", 0.5, 9);
  options.restarts = 1;
  options.params.max_iterations = 120;
  const auto minmin = make_scheduler("MinMin");
  const auto cpop = make_scheduler("CPoP");
  const auto result = run_pisa(*minmin, *cpop, options, 9);
  const auto& stats = workflows::blast_stats();
  const auto& inst = result.best_instance;
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_GE(inst.graph.cost(t), stats.min_runtime);
    EXPECT_LE(inst.graph.cost(t), stats.max_runtime);
  }
  for (NodeId v = 0; v < inst.network.node_count(); ++v) {
    EXPECT_GE(inst.network.speed(v), stats.min_speed);
    EXPECT_LE(inst.network.speed(v), stats.max_speed);
  }
}

}  // namespace
}  // namespace saga::pisa
