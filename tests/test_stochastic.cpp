#include <gtest/gtest.h>

#include <cmath>

#include "datasets/registry.hpp"
#include "sched/registry.hpp"
#include "stochastic/robustness.hpp"
#include "stochastic/stochastic_instance.hpp"

namespace saga::stochastic {
namespace {

TEST(Distribution, DeterministicIsPointMass) {
  const auto d = WeightDistribution::deterministic(3.5);
  EXPECT_TRUE(d.is_deterministic());
  EXPECT_DOUBLE_EQ(d.mean(), 3.5);
  EXPECT_DOUBLE_EQ(d.min(), 3.5);
  EXPECT_DOUBLE_EQ(d.max(), 3.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
}

TEST(Distribution, UniformMomentsAndBounds) {
  const auto d = WeightDistribution::uniform(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  Rng rng(2);
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
    total += x;
  }
  EXPECT_NEAR(total / 20000, 4.0, 0.05);
}

TEST(Distribution, UniformRejectsInvertedBounds) {
  EXPECT_THROW((void)WeightDistribution::uniform(5.0, 1.0), std::invalid_argument);
}

TEST(Distribution, ClippedGaussianSymmetricCaseKeepsMean) {
  // Symmetric clipping: mean unchanged.
  const auto d = WeightDistribution::clipped_gaussian(1.0, 1.0 / 3.0, 0.0, 2.0);
  EXPECT_NEAR(d.mean(), 1.0, 1e-9);
}

TEST(Distribution, ClippedGaussianAsymmetricMeanIsExact) {
  // Clip hard from below: the analytic mean must match Monte Carlo.
  const auto d = WeightDistribution::clipped_gaussian(1.0, 1.0, 0.8, 5.0);
  Rng rng(3);
  double total = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) total += d.sample(rng);
  EXPECT_NEAR(total / n, d.mean(), 0.01);
}

TEST(Distribution, ToStringMentionsKind) {
  EXPECT_NE(WeightDistribution::deterministic(1).to_string().find("det"), std::string::npos);
  EXPECT_NE(WeightDistribution::uniform(0, 1).to_string().find("uniform"), std::string::npos);
  EXPECT_NE(WeightDistribution::clipped_gaussian(1, 1, 0, 2).to_string().find("clipgauss"),
            std::string::npos);
}

TEST(StochasticInstance, LiftedInstanceIsDeterministic) {
  const StochasticInstance s(fig1_instance());
  EXPECT_TRUE(s.is_deterministic());
  const auto realized = s.realize(1);
  EXPECT_TRUE(realized.graph.structurally_equal(fig1_instance().graph));
}

TEST(StochasticInstance, RealizationsVaryUnderNoise) {
  StochasticInstance s(fig1_instance());
  s.apply_relative_noise(0.2);
  EXPECT_FALSE(s.is_deterministic());
  const auto a = s.realize(1);
  const auto b = s.realize(2);
  EXPECT_FALSE(a.graph.structurally_equal(b.graph));
  // Topology is invariant.
  EXPECT_EQ(a.graph.dependency_count(), b.graph.dependency_count());
}

TEST(StochasticInstance, RealizationDeterministicInSeed) {
  StochasticInstance s(fig1_instance());
  s.apply_relative_noise(0.3);
  EXPECT_TRUE(s.realize(7).graph.structurally_equal(s.realize(7).graph));
}

TEST(StochasticInstance, MeanInstanceMatchesBaseUnderSymmetricNoise) {
  StochasticInstance s(fig1_instance());
  s.apply_relative_noise(0.1);  // ±3 sigma never reaches 0, so symmetric
  const auto mean = s.mean_instance();
  const auto base = fig1_instance();
  for (TaskId t = 0; t < base.graph.task_count(); ++t) {
    EXPECT_NEAR(mean.graph.cost(t), base.graph.cost(t), 1e-9);
  }
}

TEST(StochasticInstance, SettersValidateTopology) {
  StochasticInstance s(fig1_instance());
  EXPECT_THROW(s.set_dependency_cost(0, 3, WeightDistribution::deterministic(1)),
               std::out_of_range);
  EXPECT_THROW(s.set_link_strength(0, 0, WeightDistribution::deterministic(1)),
               std::out_of_range);
  s.set_task_cost(0, WeightDistribution::uniform(1.0, 2.0));
  EXPECT_FALSE(s.is_deterministic());
}

TEST(StochasticInstance, InfiniteStrengthStaysDeterministicUnderNoise) {
  auto inst = datasets::generate_instance("blast", 1, 0);  // chameleon: inf links
  StochasticInstance s(inst);
  s.apply_relative_noise(0.5);
  const auto realized = s.realize(3);
  for (NodeId a = 0; a < realized.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < realized.network.node_count(); ++b) {
      EXPECT_TRUE(std::isinf(realized.network.strength(a, b)));
    }
  }
}

TEST(Reexecute, IdenticalRealizationReproducesPlan) {
  const auto inst = fig1_instance();
  const auto planned = make_scheduler("HEFT")->schedule(inst);
  const auto replayed = reexecute(planned, inst);
  EXPECT_DOUBLE_EQ(replayed.makespan(), planned.makespan());
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(replayed.of_task(t).node, planned.of_task(t).node);
  }
}

TEST(Reexecute, KeepsAssignmentsUnderPerturbedCosts) {
  auto inst = fig1_instance();
  const auto planned = make_scheduler("HEFT")->schedule(inst);
  inst.graph.set_cost(2, 4.4);  // t3 runs twice as long as planned
  const auto realized = reexecute(planned, inst);
  EXPECT_TRUE(realized.validate(inst).ok);
  for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
    EXPECT_EQ(realized.of_task(t).node, planned.of_task(t).node);
  }
  EXPECT_GT(realized.makespan(), planned.makespan());
}

TEST(Robustness, ZeroNoiseHasUnitRegret) {
  const StochasticInstance s(fig1_instance());
  const auto report = evaluate_robustness(*make_scheduler("HEFT"), s, 10, 1);
  EXPECT_DOUBLE_EQ(report.realized.min, report.planned_makespan);
  EXPECT_DOUBLE_EQ(report.realized.max, report.planned_makespan);
  EXPECT_NEAR(report.regret.mean, 1.0, 1e-9);
}

TEST(Robustness, NoiseSpreadsRealizedMakespans) {
  StochasticInstance s(fig1_instance());
  s.apply_relative_noise(0.3);
  const auto report = evaluate_robustness(*make_scheduler("HEFT"), s, 50, 2);
  EXPECT_GT(report.realized.max, report.realized.min);
  EXPECT_EQ(report.realized.count, 50u);
  // Static plans can beat clairvoyant re-planning only by heuristic luck;
  // mean regret should be near or above 1.
  EXPECT_GT(report.regret.mean, 0.8);
}

TEST(Robustness, ReportsCarrySchedulerName) {
  const StochasticInstance s(fig1_instance());
  EXPECT_EQ(evaluate_robustness(*make_scheduler("CPoP"), s, 3, 1).scheduler, "CPoP");
}

}  // namespace
}  // namespace saga::stochastic
