// Hand-computed known-answer tests for the discrete-event simulator's fault
// machinery (src/sim). Every scenario here is small enough to work out on
// paper, and every expected value is exactly representable in a double, so
// the assertions use exact equality — any drift in the crash/re-execution,
// slowdown-repricing, jitter-sampling, or tie-breaking semantics fails
// loudly rather than hiding inside a tolerance.
//
// The headline pin: with no faults and no jitter, eager replay of a
// builder-produced plan reproduces the static TimelineBuilder makespan
// *exactly* (same arithmetic on the same doubles), which is what makes the
// simulator's degradation metric a true ratio against the fault-free run.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "datasets/registry.hpp"
#include "graph/network.hpp"
#include "graph/problem_instance.hpp"
#include "graph/task_graph.hpp"
#include "sched/registry.hpp"
#include "sched/schedule.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace saga;
using sim::Event;
using sim::FaultEvent;
using sim::JitterEvent;
using sim::SimJob;
using sim::SimReport;

/// Replays a fixed plan regardless of the instance — lets a test pin node
/// placements (e.g. to force a cross-node transfer) without reasoning about
/// a heuristic's choices.
class FixedScheduler final : public Scheduler {
 public:
  explicit FixedScheduler(Schedule plan) : plan_(std::move(plan)) {}
  [[nodiscard]] std::string_view name() const override { return "Fixed"; }
  [[nodiscard]] Schedule schedule(const ProblemInstance&, TimelineArena*) const override {
    return plan_;
  }
  using Scheduler::schedule;

 private:
  Schedule plan_;
};

SimJob job_at(double arrival, TaskGraph graph) {
  SimJob job;
  job.arrival = arrival;
  job.graph = std::move(graph);
  return job;
}

TaskGraph single_task(double cost) {
  TaskGraph graph;
  graph.add_task(cost);
  return graph;
}

FaultEvent crash_at(std::size_t node, double at) {
  FaultEvent f;
  f.kind = FaultEvent::Kind::kCrash;
  f.node = node;
  f.at = at;
  return f;
}

FaultEvent recover_at(std::size_t node, double at) {
  FaultEvent f;
  f.kind = FaultEvent::Kind::kRecover;
  f.node = node;
  f.at = at;
  return f;
}

FaultEvent slowdown(std::size_t node, double from, double until, double factor) {
  FaultEvent f;
  f.kind = FaultEvent::Kind::kSlowdown;
  f.node = node;
  f.at = from;
  f.until = until;
  f.factor = factor;
  return f;
}

JitterEvent jitter_global(double at, double factor) {
  JitterEvent j;
  j.at = at;
  j.factor = factor;
  return j;
}

JitterEvent jitter_link(double at, std::size_t a, std::size_t b, double factor) {
  JitterEvent j;
  j.at = at;
  j.has_link = true;
  j.a = a;
  j.b = b;
  j.factor = factor;
  return j;
}

// ---- Crash / recover --------------------------------------------------

// One node (speed 1), one task of cost 10, crash at t=4, recover at t=6.
// The attempt 0..4 is destroyed; the full cost re-executes 6..16. Busy time
// counts the lost attempt: 4 + 10 = 14 of a 16-unit makespan.
TEST(SimFaults, CrashMidTaskReexecutesExactlyTheLostWork) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  std::vector<Event> trace;
  const SimReport report =
      sim::simulate_jobs(net, {job_at(0.0, single_task(10.0))}, *scheduler,
                         {crash_at(0, 4.0), recover_at(0, 6.0)}, {}, nullptr, &trace);

  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.completed_jobs, 1u);
  EXPECT_EQ(report.tasks_completed, 1u);
  EXPECT_EQ(report.reexecutions, 1u);
  EXPECT_EQ(report.makespan, 16.0);
  EXPECT_EQ(report.response.mean, 16.0);
  EXPECT_EQ(report.degradation.mean, 1.6);  // 16 / planned 10
  ASSERT_EQ(report.utilization.size(), 1u);
  EXPECT_EQ(report.utilization[0], 14.0 / 16.0);

  // The full event order, byte for byte. The planned finish at t=10 is a
  // stale generation and must not appear.
  EXPECT_EQ(sim::trace_to_string(trace),
            "job-arrival t=0 job=0\n"
            "task-start t=0 job=0 task=0 node=0\n"
            "node-crash t=4 node=0\n"
            "task-lost t=4 job=0 task=0 node=0\n"
            "node-recover t=6 node=0\n"
            "task-start t=6 job=0 task=0 node=0\n"
            "task-finish t=16 job=0 task=0 node=0\n");
}

// A crash with no recovery strands the job: the event loop must still
// drain and report the incomplete run instead of hanging.
TEST(SimFaults, PermanentCrashLeavesTheJobIncomplete) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report = sim::simulate_jobs(net, {job_at(0.0, single_task(10.0))},
                                              *scheduler, {crash_at(0, 1.0)}, {});
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.completed_jobs, 0u);
  EXPECT_EQ(report.tasks_completed, 0u);
  EXPECT_EQ(report.reexecutions, 1u);
  EXPECT_EQ(report.makespan, 0.0);  // no task ever finished
  EXPECT_EQ(report.response.count, 0u);
}

// A node that is down when work arrives delays it without destroying
// anything: crash at 0, job arrives at 1, recover at 5 -> runs 5..7.
TEST(SimFaults, RecoverRestoresCapacityForQueuedWork) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report =
      sim::simulate_jobs(net, {job_at(1.0, single_task(2.0))}, *scheduler,
                         {crash_at(0, 0.0), recover_at(0, 5.0)}, {});
  EXPECT_EQ(report.completed_jobs, 1u);
  EXPECT_EQ(report.reexecutions, 0u);
  EXPECT_EQ(report.makespan, 7.0);
  EXPECT_EQ(report.response.mean, 6.0);  // finished 7, arrived 1
  ASSERT_EQ(report.utilization.size(), 1u);
  EXPECT_EQ(report.utilization[0], 2.0 / 7.0);
}

// ---- Slowdown windows -------------------------------------------------

// Task of cost 10 on a unit-speed node, slowdown factor 2 over [2, 5):
// 2 units done by t=2, then 3 wall units at rate 1/2 leave 6.5 units, done
// at t=11.5. A second chained task (cost 10) starts after the window and
// keeps its full-speed duration: only overlapping work stretches.
TEST(SimFaults, SlowdownStretchesExactlyTheOverlappingWork) {
  const Network net(1);
  TaskGraph graph;
  const TaskId a = graph.add_task(10.0);
  const TaskId b = graph.add_task(10.0);
  graph.add_dependency(a, b, 0.0);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report = sim::simulate_jobs(net, {job_at(0.0, std::move(graph))},
                                              *scheduler, {slowdown(0, 2.0, 5.0, 2.0)}, {});
  EXPECT_EQ(report.completed_jobs, 1u);
  EXPECT_EQ(report.tasks_completed, 2u);
  EXPECT_EQ(report.makespan, 21.5);  // 11.5 + 10, second task unstretched
  EXPECT_EQ(report.degradation.mean, 21.5 / 20.0);
  ASSERT_EQ(report.utilization.size(), 1u);
  EXPECT_EQ(report.utilization[0], 1.0);  // the node never idles
}

// Environment-before-work tie: a slowdown window opening at the same
// instant a task starts applies to the task (scripted events are pushed
// before arrivals, and the queue pops timestamp ties in push order).
// Window [0, 2) factor 2: 1 unit done by t=2, 9 remain, finish at t=11.
TEST(SimFaults, SlowdownBeginningAtDispatchTimeAppliesToTheTask) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report = sim::simulate_jobs(net, {job_at(0.0, single_task(10.0))},
                                              *scheduler, {slowdown(0, 0.0, 2.0, 2.0)}, {});
  EXPECT_EQ(report.makespan, 11.0);
}

// A window that opens after all work is done changes nothing but the trace.
TEST(SimFaults, SlowdownOutsideExecutionHasNoEffect) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  std::vector<Event> trace;
  const SimReport report =
      sim::simulate_jobs(net, {job_at(0.0, single_task(10.0))}, *scheduler,
                         {slowdown(0, 50.0, 60.0, 3.0)}, {}, nullptr, &trace);
  EXPECT_EQ(report.makespan, 10.0);
  const std::string rendered = sim::trace_to_string(trace);
  EXPECT_NE(rendered.find("slowdown-begin t=50 node=0 factor=3"), std::string::npos);
  EXPECT_NE(rendered.find("slowdown-end t=60 node=0"), std::string::npos);
}

// ---- Communication jitter ---------------------------------------------

// Fixture plan: t0 (cost 1) on node 0, t1 (cost 1) on node 1, dependency
// carrying 4 data units over a unit-strength link. Fault-free replay:
// t0 runs 0..1, transfer takes 4, t1 runs 5..6.
struct CrossNodePlan {
  Network net{2};
  TaskGraph graph;
  Schedule plan;

  CrossNodePlan() {
    const TaskId a = graph.add_task(1.0);
    const TaskId b = graph.add_task(1.0);
    graph.add_dependency(a, b, 4.0);
    plan.add({a, 0, 0.0, 1.0});
    plan.add({b, 1, 5.0, 6.0});
  }
};

TEST(SimFaults, JitterFreeTransferMatchesThePlan) {
  CrossNodePlan fx;
  const FixedScheduler scheduler(fx.plan);
  const SimReport report =
      sim::simulate_jobs(fx.net, {job_at(0.0, fx.graph)}, scheduler, {}, {});
  EXPECT_EQ(report.makespan, 6.0);
  EXPECT_EQ(report.degradation.mean, 1.0);
}

TEST(SimFaults, GlobalJitterScalesTheTransfer) {
  CrossNodePlan fx;
  const FixedScheduler scheduler(fx.plan);
  const SimReport report = sim::simulate_jobs(fx.net, {job_at(0.0, fx.graph)}, scheduler,
                                              {}, {jitter_global(0.0, 1.5)});
  EXPECT_EQ(report.makespan, 8.0);  // 1 + 4*1.5 + 1
}

// A per-link factor overrides the global one, and the (a, b) key is
// direction-insensitive: the script names the link as (1, 0) while the
// transfer runs 0 -> 1.
TEST(SimFaults, LinkJitterOverridesGlobalAndIgnoresDirection) {
  CrossNodePlan fx;
  const FixedScheduler scheduler(fx.plan);
  const SimReport report =
      sim::simulate_jobs(fx.net, {job_at(0.0, fx.graph)}, scheduler, {},
                         {jitter_global(0.0, 2.0), jitter_link(0.0, 1, 0, 0.5)});
  EXPECT_EQ(report.makespan, 4.0);  // 1 + 4*0.5 + 1
}

// The factor is sampled when the producing task finishes. A change at
// exactly that instant applies (environment before work at equal
// timestamps); a change after it does not retro-price the transfer.
TEST(SimFaults, JitterIsSampledAtTransferStart) {
  CrossNodePlan fx;
  const FixedScheduler scheduler(fx.plan);

  const SimReport tied = sim::simulate_jobs(fx.net, {job_at(0.0, fx.graph)}, scheduler, {},
                                            {jitter_global(1.0, 2.0)});
  EXPECT_EQ(tied.makespan, 10.0);  // 1 + 4*2 + 1: the t=1 change applies

  const SimReport late = sim::simulate_jobs(fx.net, {job_at(0.0, fx.graph)}, scheduler, {},
                                            {jitter_global(3.0, 10.0)});
  EXPECT_EQ(late.makespan, 6.0);  // transfer already priced at t=1
}

// ---- Shared-network queueing ------------------------------------------

// Two single-task jobs (cost 10) on one node, arriving at t=0 and t=1.
// Each is planned on the pristine network (planned makespan 10), but the
// second queues behind the first: runs 10..20, response 19.
TEST(SimFaults, LaterJobsQueueBehindEarlierOnes) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report =
      sim::simulate_jobs(net, {job_at(0.0, single_task(10.0)), job_at(1.0, single_task(10.0))},
                         *scheduler, {}, {});
  EXPECT_EQ(report.completed_jobs, 2u);
  EXPECT_EQ(report.makespan, 20.0);
  EXPECT_EQ(report.response.min, 10.0);
  EXPECT_EQ(report.response.max, 19.0);
  EXPECT_EQ(report.degradation.max, 1.9);  // 19 / planned 10
}

// ---- Zero-fault replay exactness --------------------------------------

// With no faults, no jitter, and one job arriving at t=0, eager replay of
// a builder plan reproduces the static makespan EXACTLY (same doubles):
// start = max(previous finish on the node, data-ready) in both worlds, and
// speed/1.0 and transfer*1.0 are exact. Degradation is then exactly 1.
TEST(SimFaults, ZeroFaultReplayMatchesTheStaticMakespanExactly) {
  const std::vector<std::string> roster = {"HEFT", "CPoP", "MinMin",
                                           "MaxMin", "MCT", "OLB"};
  std::vector<ProblemInstance> instances;
  instances.push_back(fig1_instance());
  const auto source =
      datasets::DatasetRegistry::instance().make("chains?chains=3&length=4&nodes=3", 7);
  instances.push_back(source->generate(0));
  instances.push_back(source->generate(1));

  for (const std::string& name : roster) {
    const auto scheduler = make_scheduler(name);
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const ProblemInstance& inst = instances[i];
      const Schedule planned = scheduler->schedule(inst);
      const SimReport report =
          sim::simulate_jobs(inst.network, {job_at(0.0, inst.graph)}, *scheduler, {}, {});
      EXPECT_EQ(report.makespan, planned.makespan()) << name << " instance " << i;
      EXPECT_EQ(report.degradation.mean, 1.0) << name << " instance " << i;
      EXPECT_EQ(report.completed_jobs, 1u);
      EXPECT_EQ(report.tasks_completed, inst.graph.task_count());
      EXPECT_EQ(report.reexecutions, 0u);
    }
  }
}

// The same pin through the declarative front door: a zero-fault scenario
// with a single t=0 arrival is the static experiment.
TEST(SimFaults, ZeroFaultScenarioMatchesTheStaticSchedule) {
  sim::Scenario scenario;
  scenario.dataset = "chains?chains=2&length=3&nodes=3";
  scenario.arrivals.kind = sim::ArrivalProcess::Kind::kTrace;
  scenario.arrivals.times = {0.0};
  const std::uint64_t seed = 42;
  const auto source = datasets::DatasetRegistry::instance().make(scenario.dataset, seed);
  const ProblemInstance inst = source->generate(0);

  for (const std::string name : {"HEFT", "MinMin"}) {
    const auto scheduler = make_scheduler(name);
    const SimReport report = sim::simulate_scenario(scenario, *scheduler, seed);
    EXPECT_EQ(report.makespan, scheduler->schedule(inst).makespan()) << name;
    EXPECT_EQ(report.degradation.mean, 1.0) << name;
  }
}

// ---- Script validation at the simulate_jobs boundary ------------------

TEST(SimFaults, MalformedScriptsThrow) {
  const Network net(2);
  const auto scheduler = make_scheduler("HEFT");
  const std::vector<SimJob> jobs = {job_at(0.0, single_task(1.0))};

  // Decreasing arrival times.
  EXPECT_THROW((void)sim::simulate_jobs(
                   net, {job_at(2.0, single_task(1.0)), job_at(1.0, single_task(1.0))},
                   *scheduler, {}, {}),
               std::invalid_argument);
  // Fault node out of range for the actual network.
  EXPECT_THROW((void)sim::simulate_jobs(net, jobs, *scheduler, {crash_at(5, 1.0)}, {}),
               std::invalid_argument);
  // Recover with no preceding crash breaks the alternation invariant.
  EXPECT_THROW((void)sim::simulate_jobs(net, jobs, *scheduler, {recover_at(0, 1.0)}, {}),
               std::invalid_argument);
  // Overlapping slowdown windows on the same node.
  EXPECT_THROW((void)sim::simulate_jobs(
                   net, jobs, *scheduler,
                   {slowdown(0, 1.0, 5.0, 2.0), slowdown(0, 4.0, 6.0, 2.0)}, {}),
               std::invalid_argument);
  // A jitter link needs two distinct endpoints.
  EXPECT_THROW(
      (void)sim::simulate_jobs(net, jobs, *scheduler, {}, {jitter_link(0.0, 1, 1, 2.0)}),
      std::invalid_argument);
}

// An empty job list is a valid (if dull) simulation.
TEST(SimFaults, NoJobsProducesAnEmptyReport) {
  const Network net(1);
  const auto scheduler = make_scheduler("HEFT");
  const SimReport report = sim::simulate_jobs(net, {}, *scheduler, {}, {});
  EXPECT_EQ(report.jobs, 0u);
  EXPECT_EQ(report.makespan, 0.0);
  EXPECT_EQ(report.response.count, 0u);
}

}  // namespace
