#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/json.hpp"
#include "graph/problem_instance.hpp"
#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/codec.hpp"
#include "serve/service.hpp"

/// Admission-control and cross-request batching contracts: the policy
/// pieces in isolation (AdmissionController, BatchGatherer), then the
/// ScheduleService wiring under synthetic pressure — unit-level so the 429
/// path is deterministic, no real socket load needed.

namespace saga::serve {
namespace {

using exp::Json;

HttpRequest make_request(const std::string& method, const std::string& target,
                         const std::string& body = {}) {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.version = "HTTP/1.1";
  req.body = body;
  return req;
}

std::string schedule_body() {
  return Json::object({{"scheduler", Json::string("HEFT")},
                       {"instance", instance_to_json(fig1_instance())}})
      .dump();
}

const std::string* header_of(const HttpResponse& resp, const std::string& name) {
  for (const auto& [key, value] : resp.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(AdmissionPolicy, ZeroLimitsAdmitEverythingAndAxesAreIndependent) {
  const AdmissionController unlimited(AdmissionController::Limits{0, 0});
  EXPECT_TRUE(unlimited.admit(1'000'000, 1'000'000));

  const AdmissionController queue_only(AdmissionController::Limits{2, 0});
  EXPECT_TRUE(queue_only.admit(2, 1'000));   // at the limit: admitted
  EXPECT_FALSE(queue_only.admit(3, 0));      // over the queue limit
  EXPECT_TRUE(queue_only.admit(0, 1'000));   // inflight axis unlimited

  const AdmissionController inflight_only(AdmissionController::Limits{0, 4});
  EXPECT_TRUE(inflight_only.admit(1'000, 4));
  EXPECT_FALSE(inflight_only.admit(0, 5));

  EXPECT_TRUE(AdmissionController::exempt_target("/healthz"));
  EXPECT_TRUE(AdmissionController::exempt_target("/metrics"));
  EXPECT_FALSE(AdmissionController::exempt_target("/v1/schedule"));
  EXPECT_FALSE(AdmissionController::exempt_target("/v1/compare"));
}

TEST(AdmissionPolicy, RetryAfterDerivesFromObservedP50AndBacklog) {
  AdmissionController admission(AdmissionController::Limits{1, 0});
  // No observations yet: the estimate floors at 1 second.
  EXPECT_EQ(admission.retry_after_seconds(10, 2), 1);

  // p50 lands on the 5e5 µs bucket bound (0.5 s); backlog of
  // queued=3 + inflight=1 + itself=1 → ceil(0.5 * 5) = 3 seconds.
  for (int i = 0; i < 8; ++i) admission.record_service_us(5e5);
  EXPECT_EQ(admission.retry_after_seconds(3, 1), 3);

  // The advice is clamped to 60 seconds no matter the backlog.
  EXPECT_EQ(admission.retry_after_seconds(1'000, 1'000), 60);
}

TEST(AdmissionPolicy, ShedResponseIsDeterministicAndCounted) {
  AdmissionController admission(AdmissionController::Limits{1, 0});
  EXPECT_EQ(admission.shed_total(), 0u);

  const HttpResponse first = admission.shed_response(5, 2);
  const HttpResponse second = admission.shed_response(5, 2);
  EXPECT_EQ(first.status, 429);
  EXPECT_EQ(first.body, AdmissionController::shed_body());
  EXPECT_EQ(second.body, first.body);  // byte-identical overload answers
  EXPECT_EQ(admission.shed_total(), 2u);

  // The fixed body is valid JSON with the documented error key.
  const Json parsed = Json::parse(first.body);
  ASSERT_NE(parsed.find("error"), nullptr);

  // Load-derived advice travels in the header, not the body.
  const std::string* retry = header_of(first, "Retry-After");
  ASSERT_NE(retry, nullptr);
  EXPECT_GE(std::stoi(*retry), 1);
  EXPECT_LE(std::stoi(*retry), 60);
}

TEST(ServeServiceAdmission, ShedsUnderSyntheticQueuePressureAndRecovers) {
  AdmissionController admission(AdmissionController::Limits{2, 0});
  ScheduleService::Options options;
  options.admission = &admission;
  ScheduleService service(options);

  std::atomic<std::size_t> queue_depth{0};
  service.set_gauge_sampler([&queue_depth] {
    Telemetry::Gauges gauges;
    gauges.queue_depth = queue_depth.load(std::memory_order_relaxed);
    return gauges;
  });

  const std::string good = schedule_body();
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 200);

  queue_depth.store(3, std::memory_order_relaxed);  // over max_queue = 2
  const HttpResponse shed = service.handle(make_request("POST", "/v1/schedule", good));
  EXPECT_EQ(shed.status, 429);
  EXPECT_EQ(shed.body, AdmissionController::shed_body());
  ASSERT_NE(header_of(shed, "Retry-After"), nullptr);
  // The shed fast path carries no wall-clock header: apart from
  // Retry-After the whole answer is deterministic.
  EXPECT_EQ(header_of(shed, "X-Saga-Timing-Us"), nullptr);

  const HttpResponse again = service.handle(make_request("POST", "/v1/compare", good));
  EXPECT_EQ(again.status, 429);
  EXPECT_EQ(again.body, shed.body);

  // Scrapes and liveness probes are never shed, even at full pressure.
  EXPECT_EQ(service.handle(make_request("GET", "/healthz")).status, 200);
  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("saga_admission_shed_total 2"), std::string::npos)
      << metrics.body;

  // Sheds are accounted into the regular status-class counters.
  EXPECT_EQ(service.telemetry().requests(Endpoint::kSchedule, 4), 1u);
  EXPECT_EQ(service.telemetry().requests(Endpoint::kCompare, 4), 1u);

  // Pressure gone: the same request is admitted again.
  queue_depth.store(0, std::memory_order_relaxed);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 200);
  EXPECT_EQ(admission.shed_total(), 2u);
}

TEST(ServeServiceAdmission, InflightAxisShedsIndependently) {
  AdmissionController admission(AdmissionController::Limits{0, 1});
  ScheduleService::Options options;
  options.admission = &admission;
  ScheduleService service(options);

  std::atomic<std::size_t> inflight{0};
  service.set_gauge_sampler([&inflight] {
    Telemetry::Gauges gauges;
    gauges.inflight = inflight.load(std::memory_order_relaxed);
    return gauges;
  });

  const std::string good = schedule_body();
  inflight.store(1, std::memory_order_relaxed);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 200);
  inflight.store(2, std::memory_order_relaxed);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 429);
}

TEST(BatchGather, PairGathersOntoOnePassAndDedupsIdenticalBytes) {
  BatchOptions options;
  options.window_us = 10'000'000;  // never expires: max_batch closes the window
  options.max_batch = 2;
  BatchGatherer gatherer(options);

  std::atomic<int> executions{0};
  const std::string bytes = "identical-request-bytes";
  const BatchGatherer::Work work = [&executions] {
    executions.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.body = "shared\n";
    return resp;
  };

  HttpResponse a, b;
  std::thread first([&] { a = gatherer.run("chains", bytes, work); });
  std::thread second([&] { b = gatherer.run("chains", bytes, work); });
  first.join();
  second.join();

  EXPECT_EQ(a.body, "shared\n");
  EXPECT_EQ(b.body, "shared\n");
  EXPECT_EQ(executions.load(), 1);  // byte-identical members share one execution
  EXPECT_EQ(gatherer.requests_total(), 2u);
  EXPECT_EQ(gatherer.passes_total(), 1u);
  EXPECT_EQ(gatherer.coalesced_total(), 1u);
}

TEST(BatchGather, DistinctMembersEachRunAndGetTheirOwnResponse) {
  BatchOptions options;
  options.window_us = 10'000'000;
  options.max_batch = 2;
  BatchGatherer gatherer(options);

  const std::string bytes_a = "request-a";
  const std::string bytes_b = "request-b";
  const auto work_for = [](const char* label) {
    return BatchGatherer::Work([label] {
      HttpResponse resp;
      resp.body = label;
      return resp;
    });
  };
  const BatchGatherer::Work work_a = work_for("a\n");
  const BatchGatherer::Work work_b = work_for("b\n");

  HttpResponse a, b;
  std::thread first([&] { a = gatherer.run("chains", bytes_a, work_a); });
  std::thread second([&] { b = gatherer.run("chains", bytes_b, work_b); });
  first.join();
  second.join();

  EXPECT_EQ(a.body, "a\n");
  EXPECT_EQ(b.body, "b\n");
  EXPECT_EQ(gatherer.passes_total(), 1u);
  EXPECT_EQ(gatherer.coalesced_total(), 0u);
}

TEST(BatchGather, ExceptionsPropagateToEveryDedupedMember) {
  BatchOptions options;
  options.window_us = 10'000'000;
  options.max_batch = 2;
  BatchGatherer gatherer(options);

  const std::string bytes = "explodes";
  const BatchGatherer::Work work = []() -> HttpResponse {
    throw std::runtime_error("work failed");
  };

  std::atomic<int> throws{0};
  const auto member = [&gatherer, &bytes, &work, &throws] {
    try {
      (void)gatherer.run("chains", bytes, work);
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "work failed");
      throws.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread first(member);
  std::thread second(member);
  first.join();
  second.join();
  EXPECT_EQ(throws.load(), 2);
}

TEST(BatchGather, SequentialCallsAndSeparateGroupsDoNotGather) {
  BatchOptions options;
  options.window_us = 100;  // expires almost immediately: no followers
  options.max_batch = 8;
  BatchGatherer gatherer(options);

  const std::string bytes = "solo";
  const BatchGatherer::Work work = [] {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  };
  EXPECT_EQ(gatherer.run("g1", bytes, work).body, "ok\n");
  EXPECT_EQ(gatherer.run("g1", bytes, work).body, "ok\n");
  EXPECT_EQ(gatherer.run("g2", bytes, work).body, "ok\n");
  EXPECT_EQ(gatherer.requests_total(), 3u);
  EXPECT_EQ(gatherer.passes_total(), 3u);  // each call led its own pass
  EXPECT_EQ(gatherer.coalesced_total(), 0u);
}

TEST(ServeServiceBatch, BatchedResponsesAreByteIdenticalToUnbatched) {
  ScheduleService plain;
  const std::vector<std::string> bodies = {
      R"({"scheduler": "HEFT", "dataset": "chains?length=8"})",
      R"({"scheduler": "CPoP", "dataset": "chains?length=8"})",
      schedule_body(),
  };
  std::vector<std::string> reference;
  for (const auto& body : bodies) {
    const HttpResponse resp = plain.handle(make_request("POST", "/v1/schedule", body));
    ASSERT_EQ(resp.status, 200) << resp.body;
    reference.push_back(resp.body);
  }

  // 1 and 4 concurrent clients: batch composition varies run to run, the
  // bytes must not.
  for (const int thread_count : {1, 4}) {
    ScheduleService::Options options;
    options.batch.window_us = 500;
    options.batch.max_batch = 4;
    ScheduleService batched(options);
    ASSERT_NE(batched.batcher(), nullptr);

    constexpr int kRoundsEach = 8;
    std::vector<std::vector<std::string>> got(static_cast<std::size_t>(thread_count));
    std::vector<std::thread> threads;
    for (int t = 0; t < thread_count; ++t) {
      threads.emplace_back([&batched, &bodies, &got, t] {
        for (int round = 0; round < kRoundsEach; ++round) {
          for (const auto& body : bodies) {
            got[static_cast<std::size_t>(t)].push_back(
                batched.handle(make_request("POST", "/v1/schedule", body)).body);
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    for (const auto& lane : got) {
      ASSERT_EQ(lane.size(), kRoundsEach * bodies.size());
      for (std::size_t i = 0; i < lane.size(); ++i) {
        EXPECT_EQ(lane[i], reference[i % bodies.size()]) << "thread count " << thread_count;
      }
    }
    EXPECT_EQ(batched.batcher()->requests_total(),
              static_cast<std::uint64_t>(thread_count) * kRoundsEach * bodies.size());
    EXPECT_GE(batched.batcher()->passes_total(), 1u);
  }
}

TEST(ServeServiceBatch, TimingsRequestsBypassTheGatherer) {
  ScheduleService::Options options;
  options.batch.window_us = 500;
  options.batch.max_batch = 4;
  ScheduleService service(options);
  const std::string body =
      R"({"scheduler": "HEFT", "dataset": "chains?length=8", "timings": true})";
  const HttpResponse resp = service.handle(make_request("POST", "/v1/schedule", body));
  ASSERT_EQ(resp.status, 200) << resp.body;
  // Nondeterministic bodies must not be dedup candidates.
  EXPECT_EQ(service.batcher()->requests_total(), 0u);
}

TEST(ServeServiceBatch, BatchCountersSurfaceInMetrics) {
  ScheduleService::Options options;
  options.batch.window_us = 100;
  options.batch.max_batch = 2;
  ScheduleService service(options);
  ASSERT_EQ(
      service
          .handle(make_request("POST", "/v1/schedule",
                               R"({"scheduler": "HEFT", "dataset": "chains?length=8"})"))
          .status,
      200);
  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("saga_batch_requests_total 1"), std::string::npos) << metrics.body;
  EXPECT_NE(metrics.body.find("saga_batch_passes_total 1"), std::string::npos) << metrics.body;
  EXPECT_NE(metrics.body.find("saga_batch_coalesced_total 0"), std::string::npos) << metrics.body;
}

}  // namespace
}  // namespace saga::serve
