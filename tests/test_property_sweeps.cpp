#include <gtest/gtest.h>

#include <cmath>

#include "analysis/benchmarking.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/workflow.hpp"
#include "sched/registry.hpp"

/// Wide property sweeps across every dataset family — the invariants here
/// are cheap per instance, so the suite covers all 16 generators rather
/// than the structural subset used by the per-scheduler suites.

namespace saga {
namespace {

class DatasetSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSweep, InstancesAreWellFormed) {
  for (std::size_t i = 0; i < 5; ++i) {
    const auto inst = datasets::generate_instance(GetParam(), 21, i);
    // Non-empty, acyclic, all weights valid.
    EXPECT_GT(inst.graph.task_count(), 0u);
    EXPECT_GT(inst.network.node_count(), 0u);
    EXPECT_EQ(inst.graph.topological_order().size(), inst.graph.task_count());
    for (TaskId t = 0; t < inst.graph.task_count(); ++t) {
      EXPECT_GE(inst.graph.cost(t), 0.0);
      EXPECT_FALSE(inst.graph.name(t).empty());
    }
    for (const auto& [from, to] : inst.graph.dependencies()) {
      EXPECT_GE(inst.graph.dependency_cost(from, to), 0.0);
    }
    for (NodeId v = 0; v < inst.network.node_count(); ++v) {
      EXPECT_GT(inst.network.speed(v), 0.0);
    }
  }
}

TEST_P(DatasetSweep, GenerationIsDeterministicPerIndex) {
  const auto a = datasets::generate_instance(GetParam(), 33, 2);
  const auto b = datasets::generate_instance(GetParam(), 33, 2);
  EXPECT_TRUE(a.graph.structurally_equal(b.graph));
  ASSERT_EQ(a.network.node_count(), b.network.node_count());
  for (NodeId v = 0; v < a.network.node_count(); ++v) {
    EXPECT_EQ(a.network.speed(v), b.network.speed(v));
  }
}

TEST_P(DatasetSweep, DistinctIndicesGiveDistinctInstances) {
  const auto a = datasets::generate_instance(GetParam(), 33, 0);
  const auto b = datasets::generate_instance(GetParam(), 33, 1);
  // Weights are continuous draws; identical instances would require dozens
  // of exact collisions.
  EXPECT_FALSE(a.graph.structurally_equal(b.graph));
}

TEST_P(DatasetSweep, HeftBeatsOrMatchesSerialBaseline) {
  // HEFT considers the serial placement among its choices implicitly; it
  // should rarely lose to FastestNode on in-distribution instances. We
  // assert the non-strict aggregate: mean HEFT makespan <= mean serial.
  const auto heft = make_scheduler("HEFT");
  const auto serial = make_scheduler("FastestNode");
  double heft_total = 0.0, serial_total = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    const auto inst = datasets::generate_instance(GetParam(), 44, i);
    heft_total += heft->schedule(inst).makespan();
    serial_total += serial->schedule(inst).makespan();
  }
  EXPECT_LE(heft_total, serial_total * 1.001);
}

TEST_P(DatasetSweep, DuplexSandwichedBetweenComponents) {
  const auto duplex = make_scheduler("Duplex");
  const auto minmin = make_scheduler("MinMin");
  const auto maxmin = make_scheduler("MaxMin");
  for (std::size_t i = 0; i < 3; ++i) {
    const auto inst = datasets::generate_instance(GetParam(), 55, i);
    const double d = duplex->schedule(inst).makespan();
    EXPECT_DOUBLE_EQ(
        d, std::min(minmin->schedule(inst).makespan(), maxmin->schedule(inst).makespan()));
  }
}

std::vector<std::string> all_dataset_names() {
  std::vector<std::string> names;
  for (const auto& spec : datasets::all_dataset_specs()) names.push_back(spec.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep, ::testing::ValuesIn(all_dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

class WorkflowCcrSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkflowCcrSweep, CcrPinningIsExactForEveryWorkflow) {
  for (double ccr : {0.2, 1.0, 5.0}) {
    auto inst = datasets::generate_instance(GetParam(), 13, 0);
    workflows::set_homogeneous_ccr(inst, ccr);
    EXPECT_NEAR(inst.ccr(), ccr, 1e-9) << GetParam() << " at CCR " << ccr;
  }
}

TEST_P(WorkflowCcrSweep, HigherCcrNeverSpeedsUpSerialBaseline) {
  // FastestNode pays no communication, so its makespan is CCR-invariant.
  auto low = datasets::generate_instance(GetParam(), 14, 0);
  auto high = datasets::generate_instance(GetParam(), 14, 0);
  workflows::set_homogeneous_ccr(low, 0.2);
  workflows::set_homogeneous_ccr(high, 5.0);
  const auto serial = make_scheduler("FastestNode");
  EXPECT_DOUBLE_EQ(serial->schedule(low).makespan(), serial->schedule(high).makespan());
}

TEST_P(WorkflowCcrSweep, HeftDegradesTowardSerialAsCcrGrows) {
  // As communication dominates, parallelisation pays less: HEFT's
  // advantage over FastestNode shrinks (ratio moves toward 1).
  const auto heft = make_scheduler("HEFT");
  const auto serial = make_scheduler("FastestNode");
  double low_ratio = 0.0, high_ratio = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    auto low = datasets::generate_instance(GetParam(), 15, i);
    auto high = datasets::generate_instance(GetParam(), 15, i);
    workflows::set_homogeneous_ccr(low, 0.2);
    workflows::set_homogeneous_ccr(high, 5.0);
    low_ratio += heft->schedule(low).makespan() / serial->schedule(low).makespan();
    high_ratio += heft->schedule(high).makespan() / serial->schedule(high).makespan();
  }
  EXPECT_LE(low_ratio, high_ratio + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, WorkflowCcrSweep,
                         ::testing::ValuesIn(datasets::workflow_dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace saga
