#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/schedule.hpp"

namespace saga {
namespace {

/// Two tasks a -> b with unit costs, 2-node unit network, dependency data 2.
ProblemInstance two_task_instance() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 1.0);
  inst.graph.add_dependency(a, b, 2.0);
  inst.network = Network(2);
  return inst;
}

TEST(Schedule, EmptyMakespanIsZero) { EXPECT_EQ(Schedule{}.makespan(), 0.0); }

TEST(Schedule, AddAndLookup) {
  Schedule s;
  s.add({0, 1, 0.0, 1.0});
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.of_task(0).node, 1u);
  EXPECT_THROW((void)s.of_task(1), std::out_of_range);
}

TEST(Schedule, RejectsDoubleScheduling) {
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  EXPECT_THROW(s.add({0, 1, 2.0, 3.0}), std::invalid_argument);
}

TEST(Schedule, MakespanIsLatestFinish) {
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 1, 0.5, 4.5});
  s.add({2, 0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.makespan(), 4.5);
}

TEST(Schedule, OnNodeSortedByStart) {
  Schedule s;
  s.add({0, 0, 3.0, 4.0});
  s.add({1, 0, 0.0, 1.0});
  s.add({2, 1, 0.0, 1.0});
  const auto lane = s.on_node(0);
  ASSERT_EQ(lane.size(), 2u);
  EXPECT_EQ(lane[0].task, 1u);
  EXPECT_EQ(lane[1].task, 0u);
}

TEST(ScheduleValidate, AcceptsValidSchedule) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 1, 3.0, 4.0});  // data arrives at 1 + 2/1 = 3
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(ScheduleValidate, AcceptsColocatedDependentImmediately) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 0, 1.0, 2.0});  // same node: no communication delay
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(ScheduleValidate, RejectsMissingTask) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  const auto result = s.validate(inst);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("not scheduled"), std::string::npos);
}

TEST(ScheduleValidate, RejectsUnknownTask) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 0, 1.0, 2.0});
  s.add({7, 1, 0.0, 1.0});  // instance only has tasks 0 and 1
  EXPECT_FALSE(s.validate(inst).ok);
}

TEST(ScheduleValidate, RejectsUnknownNode) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 9, 0.0, 1.0});
  s.add({1, 0, 3.0, 4.0});
  EXPECT_FALSE(s.validate(inst).ok);
}

TEST(ScheduleValidate, RejectsNegativeStart) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, -1.0, 0.0});
  s.add({1, 0, 1.0, 2.0});
  EXPECT_FALSE(s.validate(inst).ok);
}

TEST(ScheduleValidate, RejectsInconsistentFinishTime) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 2.0});  // exec time is 1, not 2
  s.add({1, 0, 2.0, 3.0});
  const auto result = s.validate(inst);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("inconsistent"), std::string::npos);
}

TEST(ScheduleValidate, RejectsOverlapOnSameNode) {
  ProblemInstance inst;
  inst.graph.add_task("a", 1.0);
  inst.graph.add_task("b", 1.0);  // independent tasks
  inst.network = Network(1);
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 0, 0.5, 1.5});
  const auto result = s.validate(inst);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("overlap"), std::string::npos);
}

TEST(ScheduleValidate, AllowsBackToBackTasks) {
  ProblemInstance inst;
  inst.graph.add_task("a", 1.0);
  inst.graph.add_task("b", 1.0);
  inst.network = Network(1);
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 0, 1.0, 2.0});
  EXPECT_TRUE(s.validate(inst).ok);
}

TEST(ScheduleValidate, RejectsStartBeforeDataArrives) {
  const auto inst = two_task_instance();
  Schedule s;
  s.add({0, 0, 0.0, 1.0});
  s.add({1, 1, 2.0, 3.0});  // data only arrives at t=3
  const auto result = s.validate(inst);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("arrives"), std::string::npos);
}

TEST(ScheduleValidate, CommDelayScalesWithWeakLink) {
  auto inst = two_task_instance();
  inst.network.set_strength(0, 1, 0.5);  // transfer takes 2/0.5 = 4
  Schedule ok;
  ok.add({0, 0, 0.0, 1.0});
  ok.add({1, 1, 5.0, 6.0});
  EXPECT_TRUE(ok.validate(inst).ok);
  Schedule bad;
  bad.add({0, 0, 0.0, 1.0});
  bad.add({1, 1, 4.9, 5.9});
  EXPECT_FALSE(bad.validate(inst).ok);
}

TEST(ScheduleValidate, ZeroCostTaskHasZeroDuration) {
  ProblemInstance inst;
  inst.graph.add_task("free", 0.0);
  inst.network = Network(1);
  Schedule s;
  s.add({0, 0, 5.0, 5.0});
  EXPECT_TRUE(s.validate(inst).ok);
}

}  // namespace
}  // namespace saga
