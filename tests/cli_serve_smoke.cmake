# End-to-end smoke of the scheduler-as-a-service daemon, run by ctest in
# script mode:
#   cmake -DSAGA_CLI=<path> -DSAGA_PROBE=<path> -DWORK_DIR=<scratch> \
#         -P cli_serve_smoke.cmake
# Exercises: `saga serve` on an ephemeral port (discovered via --port-file),
# driven over real TCP by saga_http_probe — /healthz, /v1/schedule (with a
# `saga generate --json` instance and with a dataset spec), /v1/compare,
# /metrics — plus the 4xx error contract (daemon stays up), byte-identical
# repeated responses, and a SIGTERM graceful drain that reports the served
# request count.

foreach(var SAGA_CLI SAGA_PROBE WORK_DIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(saga_expect_success name)
  execute_process(COMMAND ${SAGA_CLI} ${ARGN}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "step '${name}' failed (exit ${rv})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${name}_output "${out}" PARENT_SCOPE)
endfunction()

# Issues one HTTP request through the probe; FATALs unless the exit code is
# `expect_rv` (0 = 2xx, 1 = anything else). The response body lands in
# ${name}_body (and in `outfile` when given, byte-exact).
function(probe name expect_rv method path body outfile)
  set(args ${PORT} ${method} ${path})
  if(body)
    list(APPEND args ${body})
  endif()
  if(outfile)
    list(APPEND args -o ${outfile})
  endif()
  execute_process(COMMAND ${SAGA_PROBE} ${args}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL ${expect_rv})
    message(FATAL_ERROR "probe '${name}' exited ${rv}, expected ${expect_rv}\nstderr:\n${err}\nbody:\n${out}")
  endif()
  if(outfile AND EXISTS ${outfile})
    file(READ ${outfile} out)
  endif()
  set(${name}_body "${out}" PARENT_SCOPE)
  set(${name}_status "${err}" PARENT_SCOPE)
endfunction()

function(expect_identical a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b} RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "${a} and ${b} differ (expected byte-identical)")
  endif()
endfunction()

# 1. Fixtures: a wire-codec instance from `saga generate --json`, and
# request bodies for the daemon.
saga_expect_success(gen_json generate chains 0 7 --json)
file(WRITE ${WORK_DIR}/instance.json "${gen_json_output}")
# The JSON instance feeds straight back into format-sniffing commands.
saga_expect_success(sched_json schedule HEFT ${WORK_DIR}/instance.json)

file(READ ${WORK_DIR}/instance.json instance_json)
file(WRITE ${WORK_DIR}/schedule_req.json
  "{\"scheduler\": \"HEFT\", \"instance\": ${instance_json}}")
file(WRITE ${WORK_DIR}/schedule_dataset_req.json
  "{\"scheduler\": \"HEFT\", \"dataset\": \"chains?length=8\", \"index\": 1, \"seed\": 7}")
file(WRITE ${WORK_DIR}/compare_req.json
  "{\"schedulers\": [\"HEFT\", \"CPoP\", \"MCT\"], \"dataset\": \"chains\", \"seed\": 7}")
file(WRITE ${WORK_DIR}/bad_scheduler_req.json
  "{\"scheduler\": \"HEFTT\", \"dataset\": \"chains\"}")
file(WRITE ${WORK_DIR}/malformed_req.json "{\"scheduler\": ")

# 2. Start the daemon on an ephemeral port; it runs with 4 workers so the
# concurrent-determinism check below exercises real parallelism.
set(PORT_FILE ${WORK_DIR}/port)
set(LOG_FILE ${WORK_DIR}/daemon.log)
set(PID_FILE ${WORK_DIR}/pid)
execute_process(COMMAND sh -c
  "${SAGA_CLI} serve --port 0 --threads 4 --port-file ${PORT_FILE} >/dev/null 2>${LOG_FILE} & echo $! > ${PID_FILE}"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "failed to launch saga serve")
endif()
file(READ ${PID_FILE} DAEMON_PID)
string(STRIP "${DAEMON_PID}" DAEMON_PID)

# Poll for the port file (the daemon writes it once it is listening).
set(PORT "")
foreach(attempt RANGE 100)
  if(EXISTS ${PORT_FILE})
    file(READ ${PORT_FILE} PORT)
    string(STRIP "${PORT}" PORT)
    if(PORT)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT PORT)
  file(READ ${LOG_FILE} log)
  message(FATAL_ERROR "daemon never wrote its port file; log:\n${log}")
endif()

# 3. Liveness, scheduling (inline instance and dataset spec), compare.
probe(healthz 0 GET /healthz "" "")
if(NOT healthz_body MATCHES "\"status\": \"ok\"")
  message(FATAL_ERROR "unexpected /healthz body: ${healthz_body}")
endif()

probe(schedule 0 POST /v1/schedule ${WORK_DIR}/schedule_req.json ${WORK_DIR}/resp_1.json)
if(NOT schedule_body MATCHES "\"makespan\"")
  message(FATAL_ERROR "/v1/schedule response has no makespan: ${schedule_body}")
endif()

probe(schedule_ds 0 POST /v1/schedule ${WORK_DIR}/schedule_dataset_req.json "")
if(NOT schedule_ds_body MATCHES "\"makespan\"")
  message(FATAL_ERROR "dataset /v1/schedule response has no makespan: ${schedule_ds_body}")
endif()

probe(compare 0 POST /v1/compare ${WORK_DIR}/compare_req.json "")
if(NOT compare_body MATCHES "\"best\"")
  message(FATAL_ERROR "/v1/compare response has no best row: ${compare_body}")
endif()

# 4. Determinism: the same request, repeated against the 4-thread daemon,
# returns byte-identical bodies.
foreach(i RANGE 2 5)
  probe(repeat_${i} 0 POST /v1/schedule ${WORK_DIR}/schedule_req.json ${WORK_DIR}/resp_${i}.json)
  expect_identical(${WORK_DIR}/resp_1.json ${WORK_DIR}/resp_${i}.json)
endforeach()

# 5. Error contract: 4xx with did-you-mean diagnostics; the daemon stays up.
probe(bad_scheduler 1 POST /v1/schedule ${WORK_DIR}/bad_scheduler_req.json "")
if(NOT bad_scheduler_body MATCHES "did you mean")
  message(FATAL_ERROR "unknown scheduler error lacks a suggestion: ${bad_scheduler_body}")
endif()
probe(malformed 1 POST /v1/schedule ${WORK_DIR}/malformed_req.json "")
if(NOT malformed_body MATCHES "error")
  message(FATAL_ERROR "malformed JSON got no error body: ${malformed_body}")
endif()
probe(lost 1 GET /v1/schedul "" "")
if(NOT lost_body MATCHES "did you mean '/v1/schedule'")
  message(FATAL_ERROR "404 lacks the nearest-path suggestion: ${lost_body}")
endif()
probe(still_up 0 GET /healthz "" "")

# 6. Metrics: request counters and the latency histogram are exposed.
probe(metrics 0 GET /metrics "" "")
foreach(needle
    "saga_requests_total"
    "endpoint=\"schedule\",status=\"2xx\""
    "endpoint=\"schedule\",status=\"4xx\""
    "saga_request_latency_us_bucket"
    "saga_request_latency_p_us{p=\"99\"}"
    "saga_arena_reuse_total{kind=\"hit\"}"
    "saga_uptime_seconds")
  if(NOT metrics_body MATCHES "${needle}")
    message(FATAL_ERROR "/metrics is missing '${needle}':\n${metrics_body}")
  endif()
endforeach()

# 7. Overload: a second daemon with tight admission limits (one worker,
# max-queue 1) is hit with six concurrent slow GA requests. At least one
# must be shed with the deterministic 429 body, none may 5xx, /metrics must
# survive the overload, and plain requests must succeed again afterwards.
file(WRITE ${WORK_DIR}/slow_req.json
  "{\"scheduler\": \"GA\", \"dataset\": \"chains?chains=8&length=25\", \"seed\": 7}")
set(PORT_FILE2 ${WORK_DIR}/port2)
set(LOG_FILE2 ${WORK_DIR}/daemon2.log)
set(PID_FILE2 ${WORK_DIR}/pid2)
execute_process(COMMAND sh -c
  "${SAGA_CLI} serve --port 0 --threads 1 --max-queue 1 --max-inflight 1 --port-file ${PORT_FILE2} >/dev/null 2>${LOG_FILE2} & echo $! > ${PID_FILE2}"
  RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "failed to launch the overload daemon")
endif()
file(READ ${PID_FILE2} DAEMON2_PID)
string(STRIP "${DAEMON2_PID}" DAEMON2_PID)
set(PORT2 "")
foreach(attempt RANGE 100)
  if(EXISTS ${PORT_FILE2})
    file(READ ${PORT_FILE2} PORT2)
    string(STRIP "${PORT2}" PORT2)
    if(PORT2)
      break()
    endif()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT PORT2)
  file(READ ${LOG_FILE2} log)
  message(FATAL_ERROR "overload daemon never wrote its port file; log:\n${log}")
endif()

# Six concurrent slow requests against one worker: the first occupies the
# worker (~70 ms), the rest pile onto the queue past max-queue. Each probe
# runs in the background and records its exit code once its body is final.
foreach(i RANGE 1 6)
  execute_process(COMMAND sh -c
    "( ${SAGA_PROBE} ${PORT2} POST /v1/schedule ${WORK_DIR}/slow_req.json -o ${WORK_DIR}/over_${i}.body ; echo $? > ${WORK_DIR}/over_${i}.rv ) > /dev/null 2>&1 &"
    RESULT_VARIABLE rv)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "failed to launch overload probe ${i}")
  endif()
endforeach()

# Scrapes are never shed: /metrics answers even while the queue is full
# (it waits its turn behind the backlog, but it is not refused).
set(PORT1 ${PORT})
set(PORT ${PORT2})
probe(overload_metrics 0 GET /metrics "" "")

# Collect every probe's exit code (written after its body file is final).
foreach(i RANGE 1 6)
  set(waited 0)
  while(NOT EXISTS ${WORK_DIR}/over_${i}.rv AND waited LESS 100)
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
    math(EXPR waited "${waited} + 1")
  endwhile()
  if(NOT EXISTS ${WORK_DIR}/over_${i}.rv)
    message(FATAL_ERROR "overload probe ${i} never finished")
  endif()
endforeach()

# Every response is either a scheduled 200 or the canned deterministic 429
# — anything else (especially a 5xx) fails the smoke.
set(shed_count 0)
set(first_shed_body "")
foreach(i RANGE 1 6)
  file(READ ${WORK_DIR}/over_${i}.rv over_rv)
  string(STRIP "${over_rv}" over_rv)
  file(READ ${WORK_DIR}/over_${i}.body over_body)
  if(over_rv EQUAL 0)
    if(NOT over_body MATCHES "\"makespan\"")
      message(FATAL_ERROR "overload probe ${i} succeeded without a makespan: ${over_body}")
    endif()
  else()
    if(NOT over_body MATCHES "too many requests")
      message(FATAL_ERROR "overload probe ${i} failed with a non-429 body: ${over_body}")
    endif()
    math(EXPR shed_count "${shed_count} + 1")
    if(first_shed_body STREQUAL "")
      set(first_shed_body "${over_body}")
    elseif(NOT over_body STREQUAL first_shed_body)
      message(FATAL_ERROR "shed bodies differ (expected deterministic 429):\n${first_shed_body}\nvs\n${over_body}")
    endif()
  endif()
endforeach()
if(shed_count EQUAL 0)
  message(FATAL_ERROR "overload run shed nothing; admission control never engaged")
endif()

# Recovery: once the backlog drains, plain requests are admitted again and
# the shed tally is visible in /metrics.
probe(overload_recovered 0 POST /v1/schedule ${WORK_DIR}/schedule_dataset_req.json "")
probe(overload_metrics_after 0 GET /metrics "" "")
set(PORT ${PORT1})
if(NOT overload_metrics_after_body MATCHES "saga_admission_shed_total [1-9]")
  message(FATAL_ERROR "/metrics does not report the sheds:\n${overload_metrics_after_body}")
endif()

execute_process(COMMAND kill -TERM ${DAEMON2_PID} RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "could not signal the overload daemon (pid ${DAEMON2_PID})")
endif()
foreach(attempt RANGE 100)
  execute_process(COMMAND kill -0 ${DAEMON2_PID}
    RESULT_VARIABLE rv ERROR_QUIET OUTPUT_QUIET)
  if(NOT rv EQUAL 0)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()

# 8. Graceful drain: SIGTERM, then the process exits and reports its tally.
execute_process(COMMAND kill -TERM ${DAEMON_PID} RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "could not signal the daemon (pid ${DAEMON_PID})")
endif()
set(gone FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND kill -0 ${DAEMON_PID}
    RESULT_VARIABLE rv ERROR_QUIET OUTPUT_QUIET)
  if(NOT rv EQUAL 0)
    set(gone TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT gone)
  execute_process(COMMAND kill -9 ${DAEMON_PID} ERROR_QUIET OUTPUT_QUIET)
  message(FATAL_ERROR "daemon did not exit within 10s of SIGTERM")
endif()
file(READ ${LOG_FILE} log)
if(NOT log MATCHES "saga serve: listening on 127.0.0.1:${PORT}")
  message(FATAL_ERROR "daemon log lacks the listening banner:\n${log}")
endif()
if(NOT log MATCHES "drained; served [0-9]+ request")
  message(FATAL_ERROR "daemon log lacks the drain report:\n${log}")
endif()

message(STATUS "cli_serve_smoke: all steps passed")
