// Fuzz-ish unit tests for the shared spec-string parser (common/spec.hpp),
// exercised through both the scheduler and dataset flavours: grammar edge
// cases (empty keys/values, duplicate keys, trailing '&', '+'-lists),
// typed-conversion failures, exact round-trips, and the guarantee that a
// grammar error is always a clean std::invalid_argument naming the kind.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/spec.hpp"

namespace {

using namespace saga;

// --- grammar edge cases ----------------------------------------------------

TEST(SharedSpecGrammar, RejectsEmptyAndSeparatorOnlyInputs) {
  for (const char* text : {"", "?", "?a=1", "&", "=", "a&b", "a=b"}) {
    EXPECT_THROW((void)parse_spec(text, "dataset"), std::invalid_argument) << "'" << text << "'";
  }
}

TEST(SharedSpecGrammar, RejectsTrailingAndDoubledAmpersands) {
  for (const char* text : {"montage?n=5&", "montage?n=5&&ccr=1", "montage?&n=5"}) {
    EXPECT_THROW((void)parse_spec(text, "dataset"), std::invalid_argument) << "'" << text << "'";
  }
}

TEST(SharedSpecGrammar, RejectsEmptyKeysAndValuesNamingThem) {
  try {
    (void)parse_spec("erdos?=5", "dataset");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty parameter key"), std::string::npos) << e.what();
  }
  try {
    (void)parse_spec("erdos?n=", "dataset");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'n' has an empty value"), std::string::npos)
        << e.what();
  }
}

TEST(SharedSpecGrammar, RejectsDuplicateKeysNamingThem) {
  try {
    (void)parse_spec("erdos?n=5&p=0.2&n=9", "dataset");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate parameter 'n'"), std::string::npos)
        << e.what();
  }
}

TEST(SharedSpecGrammar, ErrorMessagesNameTheKind) {
  for (const char* kind : {"scheduler", "dataset"}) {
    try {
      (void)parse_spec("x?broken", kind);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("bad ") + kind + " spec"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(SharedSpecGrammar, RoundTripsExactly) {
  for (const char* text :
       {"montage", "montage?n=200&ccr=0.5", "erdos?n=64&p=0.1&hetero=2.0",
        "perturbed?base=montage&level=0.3", "noisy?base=blast&cv=0.2",
        "ensemble?members=heft+cpop+minmin", "a?b=c&d=e&f=g+h+i"}) {
    EXPECT_EQ(parse_spec(text, "dataset").to_string(), text) << text;
  }
}

TEST(SharedSpecGrammar, ValuesMayContainQuestionMarks) {
  // Nested wrapper specs ride in values: the first '?' ends the name, later
  // ones are plain value characters.
  const auto spec = parse_spec("noisy?base=montage?n=50&cv=0.5", "dataset");
  EXPECT_EQ(spec.name, "noisy");
  ASSERT_EQ(spec.params.size(), 2u);
  EXPECT_EQ(spec.params[0].second, "montage?n=50");
  EXPECT_EQ(spec.params[1].first, "cv");
}

TEST(SharedSpecGrammar, FindReturnsNullForAbsentKeys) {
  const auto spec = parse_spec("erdos?n=64", "dataset");
  ASSERT_NE(spec.find("n"), nullptr);
  EXPECT_EQ(*spec.find("n"), "64");
  EXPECT_EQ(spec.find("p"), nullptr);
  EXPECT_EQ(spec.find(""), nullptr);
}

// --- typed parameter conversions -------------------------------------------

class SpecParamsTyped : public ::testing::Test {
 protected:
  [[nodiscard]] static SpecParams params_for(const Spec& spec) {
    return SpecParams("dataset", spec.name, &spec.params);
  }
};

TEST_F(SpecParamsTyped, NonNumericValuesForNumericKeysThrowNamingOwner) {
  const auto spec = parse_spec("erdos?n=banana&p=0.5x&q=-3", "dataset");
  const auto params = params_for(spec);
  for (const char* key : {"n"}) {
    try {
      (void)params.get_u64(key, 0);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("dataset 'erdos'"), std::string::npos) << what;
      EXPECT_NE(what.find("banana"), std::string::npos) << what;
    }
  }
  EXPECT_THROW((void)params.get_double("p", 0.0), std::invalid_argument);
  EXPECT_THROW((void)params.get_u64("q", 0), std::invalid_argument);  // negative for unsigned
  EXPECT_EQ(params.get_i64("q", 0), -3);                              // fine for signed
}

TEST_F(SpecParamsTyped, FallbacksApplyOnlyWhenAbsent) {
  const auto spec = parse_spec("x?a=7&b=true&c=hello", "dataset");
  const auto params = params_for(spec);
  EXPECT_EQ(params.get_u64("a", 1), 7u);
  EXPECT_EQ(params.get_u64("missing", 1), 1u);
  EXPECT_TRUE(params.get_bool("b", false));
  EXPECT_FALSE(params.get_bool("missing", false));
  EXPECT_EQ(params.get_string("c", "nope"), "hello");
  EXPECT_EQ(params.get_string("missing", "nope"), "nope");
}

TEST_F(SpecParamsTyped, ListsSplitOnPlusAndRejectEmptyElements) {
  const auto spec = parse_spec("x?good=a+b+c&bad=a++c&worse=a+", "dataset");
  const auto params = params_for(spec);
  const auto list = params.get_list("good", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[2], "c");
  EXPECT_THROW((void)params.get_list("bad", {}), std::invalid_argument);
  EXPECT_THROW((void)params.get_list("worse", {}), std::invalid_argument);
}

TEST_F(SpecParamsTyped, BoolAcceptsCanonicalSpellingsOnly) {
  const auto spec = parse_spec("x?a=1&b=0&c=yes", "dataset");
  const auto params = params_for(spec);
  EXPECT_TRUE(params.get_bool("a", false));
  EXPECT_FALSE(params.get_bool("b", true));
  EXPECT_THROW((void)params.get_bool("c", false), std::invalid_argument);
}

}  // namespace
