// The simulator's determinism contract: a simulation is a pure function of
// (scenario, seed). Pins, in increasing scope:
//
//   - repeated runs produce byte-identical event traces (and hashes),
//   - every scheduler in a roster faces the identical workload stream,
//   - simulate-mode experiments emit byte-identical CSV/JSON artifacts
//     regardless of thread count, shard decomposition (1..4), or an
//     interrupt-and-resume cycle — the PR-5 executor contract extended to
//     the discrete-event mode,
//   - per-cell stored payloads are identical across decompositions,
//   - 25 fuzzed scenarios (random arrivals, paired crash/recover faults,
//     slowdown windows, jitter, weight noise) replay identically and
//     round-trip through their JSON grammar.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exp/experiment.hpp"
#include "exp/json.hpp"
#include "exp/resultstore.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"

namespace {

namespace fs = std::filesystem;
using namespace saga;
using exp::ExperimentSpec;
using exp::Mode;
using exp::RunOptions;
using sim::Event;

/// Fresh scratch directory under the test temp dir.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("sim_determinism_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A small but fully-loaded scenario: Poisson arrivals, a crash/recover
/// pair, a slowdown window, global + per-link jitter, and weight noise.
sim::Scenario tiny_scenario() {
  sim::Scenario s;
  s.dataset = "chains?chains=2&length=3&nodes=3";
  s.arrivals.kind = sim::ArrivalProcess::Kind::kPoisson;
  s.arrivals.rate = 0.8;
  s.arrivals.jobs = 5;
  {
    sim::FaultEvent crash;
    crash.kind = sim::FaultEvent::Kind::kCrash;
    crash.node = 1;
    crash.at = 2.0;
    s.faults.push_back(crash);
    sim::FaultEvent recover;
    recover.kind = sim::FaultEvent::Kind::kRecover;
    recover.node = 1;
    recover.at = 3.5;
    s.faults.push_back(recover);
    sim::FaultEvent slow;
    slow.kind = sim::FaultEvent::Kind::kSlowdown;
    slow.node = 0;
    slow.at = 1.0;
    slow.until = 2.0;
    slow.factor = 2.0;
    s.faults.push_back(slow);
  }
  {
    sim::JitterEvent global;
    global.at = 0.0;
    global.factor = 1.1;
    s.jitter.push_back(global);
    sim::JitterEvent link;
    link.at = 1.0;
    link.has_link = true;
    link.a = 0;
    link.b = 2;
    link.factor = 1.5;
    s.jitter.push_back(link);
  }
  s.noise_cv = 0.1;
  return s;
}

ExperimentSpec simulate_spec() {
  ExperimentSpec spec;
  spec.name = "equivalence-simulate";
  spec.mode = Mode::kSimulate;
  spec.schedulers = {"HEFT", "CPoP", "MinMin", "Online?policy=eft"};
  spec.scenario = tiny_scenario();
  spec.seed = 42;
  return spec;
}

struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts run_monolithic(ExperimentSpec spec, const fs::path& dir,
                         const RunOptions& options = {}) {
  fs::create_directories(dir);
  spec.csv = (dir / "out.csv").string();
  spec.json = (dir / "out.json").string();
  std::ostringstream sink;
  const auto result = exp::run_experiment(spec, sink, options);
  EXPECT_TRUE(result.stats.complete);
  return {slurp(dir / "out.csv"), slurp(dir / "out.json")};
}

std::vector<fs::path> run_shards(const ExperimentSpec& spec, const fs::path& dir,
                                 std::size_t shards) {
  std::vector<fs::path> stores;
  for (std::size_t i = 1; i <= shards; ++i) {
    RunOptions options;
    options.shard_index = i;
    options.shard_count = shards;
    options.out_dir = (dir / ("store_" + std::to_string(i))).string();
    std::ostringstream sink;
    const auto result = exp::run_experiment(spec, sink, options);
    EXPECT_EQ(result.stats.complete, shards == 1);
    stores.emplace_back(options.out_dir);
  }
  return stores;
}

Artifacts merge_to_artifacts(const std::vector<fs::path>& stores, const fs::path& dir) {
  fs::create_directories(dir);
  auto merged = exp::merge_stores(stores);
  merged.spec.csv = (dir / "merged.csv").string();
  merged.spec.json = (dir / "merged.json").string();
  std::ostringstream sink;
  exp::emit_result(merged.spec, merged.result, sink);
  return {slurp(dir / "merged.csv"), slurp(dir / "merged.json")};
}

/// The lines of a rendered trace that start with `prefix`.
std::vector<std::string> trace_lines_with(const std::string& rendered,
                                          const std::string& prefix) {
  std::vector<std::string> lines;
  std::istringstream in(rendered);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) lines.push_back(line);
  }
  return lines;
}

// ---- Trace-level determinism ------------------------------------------

TEST(SimDeterminism, RepeatedRunsProduceByteIdenticalTraces) {
  const sim::Scenario scenario = tiny_scenario();
  const auto scheduler = make_scheduler("HEFT");
  std::vector<Event> first_trace;
  std::vector<Event> second_trace;
  const sim::SimReport first =
      sim::simulate_scenario(scenario, *scheduler, 42, nullptr, &first_trace);
  const sim::SimReport second =
      sim::simulate_scenario(scenario, *scheduler, 42, nullptr, &second_trace);

  EXPECT_EQ(sim::trace_to_string(first_trace), sim::trace_to_string(second_trace));
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  EXPECT_EQ(first.trace_events, second.trace_events);
  EXPECT_EQ(first.makespan, second.makespan);  // bitwise, not approximate
  EXPECT_EQ(first.response.mean, second.response.mean);
  EXPECT_EQ(first.utilization, second.utilization);
  EXPECT_EQ(first.completed_jobs, first.jobs);
}

// Workload streams derive from the experiment seed alone, so every
// scheduler in a roster sees the same arrivals (fairness of comparison).
TEST(SimDeterminism, EverySchedulerFacesTheIdenticalWorkload) {
  const sim::Scenario scenario = tiny_scenario();
  std::vector<Event> heft_trace;
  std::vector<Event> minmin_trace;
  (void)sim::simulate_scenario(scenario, *make_scheduler("HEFT"), 42, nullptr, &heft_trace);
  (void)sim::simulate_scenario(scenario, *make_scheduler("MinMin"), 42, nullptr,
                               &minmin_trace);

  const auto heft_arrivals =
      trace_lines_with(sim::trace_to_string(heft_trace), "job-arrival");
  const auto minmin_arrivals =
      trace_lines_with(sim::trace_to_string(minmin_trace), "job-arrival");
  EXPECT_EQ(heft_arrivals, minmin_arrivals);
  EXPECT_EQ(heft_arrivals.size(), scenario.arrivals.jobs);

  const std::vector<double> times = sim::arrival_times(scenario, 42);
  ASSERT_EQ(times.size(), scenario.arrivals.jobs);
  for (std::size_t j = 1; j < times.size(); ++j) EXPECT_GE(times[j], times[j - 1]);
}

TEST(SimDeterminism, TheSeedOwnsTheWorkload) {
  const sim::Scenario scenario = tiny_scenario();
  EXPECT_NE(sim::arrival_times(scenario, 1), sim::arrival_times(scenario, 2));
  EXPECT_EQ(sim::arrival_times(scenario, 7), sim::arrival_times(scenario, 7));

  // Trace arrivals are verbatim, seed-independent.
  sim::Scenario traced = scenario;
  traced.arrivals.kind = sim::ArrivalProcess::Kind::kTrace;
  traced.arrivals.times = {0.0, 1.5, 3.0};
  EXPECT_EQ(sim::arrival_times(traced, 1), traced.arrivals.times);
  EXPECT_EQ(sim::arrival_times(traced, 2), traced.arrivals.times);
}

// ---- Executor-level determinism ---------------------------------------

TEST(SimDeterminism, ThreadCountLeavesArtifactsByteIdentical) {
  const fs::path dir = scratch("threads");
  const Artifacts golden = run_monolithic(simulate_spec(), dir / "golden");

  for (std::size_t threads = 1; threads <= 4; ++threads) {
    ExperimentSpec spec = simulate_spec();
    spec.threads = threads;
    const Artifacts got =
        run_monolithic(spec, dir / ("t" + std::to_string(threads)));
    EXPECT_EQ(got.csv, golden.csv) << threads << " threads";
    EXPECT_EQ(got.json, golden.json) << threads << " threads";
  }
  ExperimentSpec sequential = simulate_spec();
  sequential.parallel = false;
  const Artifacts got = run_monolithic(sequential, dir / "sequential");
  EXPECT_EQ(got.csv, golden.csv);
  EXPECT_EQ(got.json, golden.json);
}

TEST(SimDeterminism, MergeOfAnyShardCountMatchesMonolithicByteForByte) {
  const fs::path dir = scratch("shards");
  const Artifacts golden = run_monolithic(simulate_spec(), dir / "mono");

  for (std::size_t shards = 1; shards <= 4; ++shards) {
    const fs::path shard_dir = dir / ("n" + std::to_string(shards));
    const auto stores = run_shards(simulate_spec(), shard_dir, shards);
    const Artifacts merged = merge_to_artifacts(stores, shard_dir);
    EXPECT_EQ(merged.csv, golden.csv) << shards << " shards";
    EXPECT_EQ(merged.json, golden.json) << shards << " shards";
  }
}

TEST(SimDeterminism, InterruptedRunResumesToTheMonolithicArtifacts) {
  const fs::path dir = scratch("resume");
  const Artifacts golden = run_monolithic(simulate_spec(), dir / "mono");

  // "Interrupt" by running only shard 1/2 into the store, then resume the
  // full grid against the same store.
  const fs::path store_dir = dir / "store";
  {
    RunOptions options;
    options.shard_index = 1;
    options.shard_count = 2;
    options.out_dir = store_dir.string();
    std::ostringstream sink;
    const auto partial = exp::run_experiment(simulate_spec(), sink, options);
    EXPECT_FALSE(partial.stats.complete);
  }
  ExperimentSpec spec = simulate_spec();
  spec.csv = (dir / "resumed.csv").string();
  spec.json = (dir / "resumed.json").string();
  RunOptions options;
  options.out_dir = store_dir.string();
  options.resume = true;
  std::ostringstream sink;
  const auto resumed = exp::run_experiment(spec, sink, options);
  EXPECT_TRUE(resumed.stats.complete);
  EXPECT_GT(resumed.stats.reused, 0u);
  EXPECT_GT(resumed.stats.executed, 0u);
  EXPECT_EQ(slurp(dir / "resumed.csv"), golden.csv);
  EXPECT_EQ(slurp(dir / "resumed.json"), golden.json);
}

/// Cell-index -> payload dump for every record in a set of stores. Records
/// carry wall-clock fields, so equivalence is defined over the payloads —
/// exactly what merge/resume reuse.
std::map<std::size_t, std::string> payloads_of(const std::vector<fs::path>& stores) {
  std::map<std::size_t, std::string> payloads;
  for (const fs::path& store : stores) {
    const fs::path cells = store / "cells";
    if (!fs::exists(cells)) continue;
    for (const auto& entry : fs::directory_iterator(cells)) {
      const exp::Json record = exp::Json::parse(slurp(entry.path()));
      const std::size_t index =
          static_cast<std::size_t>(record.find("cell")->as_number());
      const bool fresh =
          payloads.emplace(index, record.find("payload")->dump()).second;
      EXPECT_TRUE(fresh) << "duplicate cell " << index;
    }
  }
  return payloads;
}

TEST(SimDeterminism, StoredPayloadsAreIdenticalAcrossDecompositions) {
  const fs::path dir = scratch("payloads");
  RunOptions options;
  options.out_dir = (dir / "mono_store").string();
  std::ostringstream sink;
  const auto result = exp::run_experiment(simulate_spec(), sink, options);
  EXPECT_TRUE(result.stats.complete);

  const auto mono = payloads_of({fs::path(options.out_dir)});
  EXPECT_EQ(mono.size(), simulate_spec().schedulers.size());
  const auto sharded = payloads_of(run_shards(simulate_spec(), dir / "sharded", 3));
  EXPECT_EQ(mono, sharded);
}

// ---- Fuzzed scenarios --------------------------------------------------

sim::Scenario random_scenario(Rng& rng) {
  const int nodes = static_cast<int>(rng.uniform_int(2, 3));
  sim::Scenario s;
  s.dataset = "chains?chains=" + std::to_string(rng.uniform_int(1, 2)) +
              "&length=" + std::to_string(rng.uniform_int(1, 3)) +
              "&nodes=" + std::to_string(nodes);
  if (rng.uniform() < 0.5) {
    s.arrivals.kind = sim::ArrivalProcess::Kind::kPoisson;
    s.arrivals.rate = 0.25 + 1.75 * rng.uniform();
    s.arrivals.jobs = static_cast<std::size_t>(rng.uniform_int(1, 4));
  } else {
    s.arrivals.kind = sim::ArrivalProcess::Kind::kTrace;
    double t = 0.0;
    const int jobs = static_cast<int>(rng.uniform_int(1, 4));
    for (int j = 0; j < jobs; ++j) {
      t += 2.0 * rng.uniform();
      s.arrivals.times.push_back(t);
    }
  }
  if (rng.uniform() < 0.7) {
    // Always pair a crash with a recovery so every job can finish.
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
    const double at = 3.0 * rng.uniform();
    sim::FaultEvent crash;
    crash.kind = sim::FaultEvent::Kind::kCrash;
    crash.node = node;
    crash.at = at;
    s.faults.push_back(crash);
    sim::FaultEvent recover;
    recover.kind = sim::FaultEvent::Kind::kRecover;
    recover.node = node;
    recover.at = at + 0.5 + 2.0 * rng.uniform();
    s.faults.push_back(recover);
  }
  if (rng.uniform() < 0.5) {
    sim::FaultEvent slow;
    slow.kind = sim::FaultEvent::Kind::kSlowdown;
    slow.node = static_cast<std::size_t>(rng.uniform_int(0, nodes - 1));
    slow.at = 4.0 * rng.uniform();
    slow.until = slow.at + 0.5 + 2.0 * rng.uniform();
    slow.factor = 1.0 + 2.0 * rng.uniform();
    s.faults.push_back(slow);
  }
  const int jitter_events = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < jitter_events; ++i) {
    sim::JitterEvent j;
    j.at = 5.0 * rng.uniform();
    j.factor = 0.5 + 2.0 * rng.uniform();
    if (rng.uniform() < 0.5) {
      j.has_link = true;
      j.a = 0;
      j.b = 1 + static_cast<std::size_t>(rng.uniform_int(0, nodes - 2));
    }
    s.jitter.push_back(j);
  }
  if (rng.uniform() < 0.5) s.noise_cv = 0.2;
  return s;
}

TEST(SimDeterminism, FuzzedScenariosReplayIdenticallyAndRoundTrip) {
  Rng rng(20260808);
  const auto scheduler = make_scheduler("HEFT");
  for (int round = 0; round < 25; ++round) {
    const sim::Scenario scenario = random_scenario(rng);
    ASSERT_NO_THROW(scenario.validate()) << "round " << round;
    const auto seed = static_cast<std::uint64_t>(rng.uniform_int(0, 1000));

    std::vector<Event> first_trace;
    std::vector<Event> second_trace;
    const sim::SimReport first =
        sim::simulate_scenario(scenario, *scheduler, seed, nullptr, &first_trace);
    const sim::SimReport second =
        sim::simulate_scenario(scenario, *scheduler, seed, nullptr, &second_trace);
    ASSERT_EQ(sim::trace_to_string(first_trace), sim::trace_to_string(second_trace))
        << "round " << round;
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.makespan, second.makespan);
    // Every crash is paired with a recovery, so no job is stranded.
    EXPECT_EQ(first.completed_jobs, first.jobs) << "round " << round;

    // The scenario grammar round-trips losslessly.
    const exp::Json encoded = scenario.to_json();
    EXPECT_EQ(sim::Scenario::from_json(encoded).to_json().dump(), encoded.dump())
        << "round " << round;
  }
}

}  // namespace
