#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "datasets/registry.hpp"
#include "sched/registry.hpp"
#include "schedulers/heft.hpp"

namespace saga {
namespace {

using RankStatistic = HeftScheduler::RankStatistic;

std::vector<HeftScheduler::Variant> all_variants() {
  std::vector<HeftScheduler::Variant> out;
  for (const auto rank : {RankStatistic::kMean, RankStatistic::kBest, RankStatistic::kWorst}) {
    for (const bool insertion : {true, false}) out.push_back({rank, insertion});
  }
  return out;
}

TEST(HeftVariants, DefaultIsThePublishedAlgorithm) {
  const HeftScheduler scheduler;
  EXPECT_EQ(scheduler.variant().rank, RankStatistic::kMean);
  EXPECT_TRUE(scheduler.variant().insertion);
}

TEST(HeftVariants, DefaultMatchesRegistryHeft) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = pisa::random_chain_instance(seed);
    EXPECT_DOUBLE_EQ(HeftScheduler{}.schedule(inst).makespan(),
                     make_scheduler("HEFT")->schedule(inst).makespan());
  }
}

TEST(HeftVariants, AllVariantsProduceValidSchedules) {
  for (const auto& variant : all_variants()) {
    const HeftScheduler scheduler(variant);
    for (const char* dataset : {"chains", "blast"}) {
      const auto inst = datasets::generate_instance(dataset, 2, 0);
      const auto result = scheduler.schedule(inst).validate(inst);
      EXPECT_TRUE(result.ok) << result.message;
    }
  }
}

TEST(HeftVariants, RankStatisticsAgreeOnHomogeneousNetworks) {
  // With equal node speeds, mean/best/worst execution times coincide, so
  // all rank statistics produce identical priority lists and schedules.
  ProblemInstance inst = datasets::generate_instance("chains", 9, 0);
  for (NodeId v = 0; v < inst.network.node_count(); ++v) inst.network.set_speed(v, 1.0);
  const double mean_ms =
      HeftScheduler({RankStatistic::kMean, true}).schedule(inst).makespan();
  const double best_ms =
      HeftScheduler({RankStatistic::kBest, true}).schedule(inst).makespan();
  const double worst_ms =
      HeftScheduler({RankStatistic::kWorst, true}).schedule(inst).makespan();
  EXPECT_DOUBLE_EQ(mean_ms, best_ms);
  EXPECT_DOUBLE_EQ(mean_ms, worst_ms);
}

TEST(HeftVariants, InsertionNeverLosesToAppendOnGapFreeInstances) {
  // On Fig. 1 the insertion policy finds the same schedule as append; the
  // variants must coincide exactly there.
  const auto inst = fig1_instance();
  EXPECT_DOUBLE_EQ(HeftScheduler({RankStatistic::kMean, true}).schedule(inst).makespan(),
                   HeftScheduler({RankStatistic::kMean, false}).schedule(inst).makespan());
}

TEST(HeftVariants, InsertionCanStrictlyBeatAppend) {
  // Wide fork with one late-arriving small task: insertion slots it into
  // an idle gap that append-only placement cannot use. Search a few seeds
  // for a strict win to keep the test robust.
  bool strict_win = false;
  for (std::uint64_t seed = 0; seed < 40 && !strict_win; ++seed) {
    const auto inst = datasets::generate_instance("in_trees", seed, 0);
    const double with_insertion =
        HeftScheduler({RankStatistic::kMean, true}).schedule(inst).makespan();
    const double append_only =
        HeftScheduler({RankStatistic::kMean, false}).schedule(inst).makespan();
    if (with_insertion < append_only - 1e-12) strict_win = true;
  }
  EXPECT_TRUE(strict_win);
}

TEST(HeftVariants, PisaSeparatesVariantsBenchmarkingCannot) {
  // The bench's headline, as a regression test at tiny scale: PISA finds
  // an instance where some variant pair differs by >20% even though the
  // variants tie on in-distribution data.
  const HeftScheduler paper({RankStatistic::kMean, true});
  const HeftScheduler worst({RankStatistic::kWorst, true});
  pisa::PisaOptions options;
  options.restarts = 3;
  const auto result = pisa::run_pisa(*static_cast<const Scheduler*>(&worst),
                                     *static_cast<const Scheduler*>(&paper), options, 11);
  EXPECT_GT(result.best_ratio, 1.2);
}

}  // namespace
}  // namespace saga
