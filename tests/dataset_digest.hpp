#pragma once

#include <cstdint>
#include <cstring>

#include "graph/problem_instance.hpp"

/// \file dataset_digest.hpp
/// Structural FNV-1a digest of a ProblemInstance: task/edge counts, task
/// names, and the exact bit patterns of every weight (task costs, dependency
/// costs, node speeds, link strengths). Two instances digest equal iff the
/// generator produced bit-identical graphs and networks, so the pinned
/// digests in dataset_digests.inc detect any drift in the dataset
/// generators or their seed derivation.

namespace saga::testing {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xffULL)) * 0x100000001b3ULL;
  }
}

inline std::uint64_t weight_bits(double d) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(d));
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline std::uint64_t instance_digest(const saga::ProblemInstance& inst) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto& g = inst.graph;
  fnv_mix(h, g.task_count());
  fnv_mix(h, g.dependency_count());
  for (saga::TaskId t = 0; t < g.task_count(); ++t) {
    for (char c : g.name(t)) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    fnv_mix(h, weight_bits(g.cost(t)));
  }
  for (const auto& [from, to] : g.dependencies()) {
    fnv_mix(h, from);
    fnv_mix(h, to);
    fnv_mix(h, weight_bits(g.dependency_cost(from, to)));
  }
  const auto& net = inst.network;
  fnv_mix(h, net.node_count());
  for (saga::NodeId v = 0; v < net.node_count(); ++v) fnv_mix(h, weight_bits(net.speed(v)));
  for (saga::NodeId a = 0; a < net.node_count(); ++a) {
    for (saga::NodeId b = a + 1; b < net.node_count(); ++b) {
      fnv_mix(h, weight_bits(net.strength(a, b)));
    }
  }
  return h;
}

}  // namespace saga::testing
