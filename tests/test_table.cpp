#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/table.hpp"

namespace saga {
namespace {

TEST(FormatFixed, RoundsToDigits) {
  EXPECT_EQ(format_fixed(1.234, 2), "1.23");
  EXPECT_EQ(format_fixed(1.235, 1), "1.2");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatRatioCell, PlainValue) { EXPECT_EQ(format_ratio_cell(1.55), "1.55"); }

TEST(FormatRatioCell, ClampsAboveFive) {
  EXPECT_EQ(format_ratio_cell(5.01), ">5.0");
  EXPECT_EQ(format_ratio_cell(999.0), ">5.0");
}

TEST(FormatRatioCell, ExactlyFiveIsNotClamped) {
  EXPECT_EQ(format_ratio_cell(5.0), "5.00");
}

TEST(FormatRatioCell, ClampsAboveThousand) {
  EXPECT_EQ(format_ratio_cell(1000.5), ">1000");
  EXPECT_EQ(format_ratio_cell(std::numeric_limits<double>::infinity()), ">1000");
}

TEST(FormatRatioCell, NanRendersDash) {
  EXPECT_EQ(format_ratio_cell(std::numeric_limits<double>::quiet_NaN()), "-");
}

TEST(FormatRatioCell, CustomThresholds) {
  EXPECT_EQ(format_ratio_cell(3.0, 2.0, 10.0), ">5.0");
  EXPECT_EQ(format_ratio_cell(11.0, 2.0, 10.0), ">1000");
}

TEST(Table, TracksShape) {
  Table t("title", {"a", "b"});
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row("r1", {"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RenderContainsTitleLabelsAndCells) {
  Table t("My Experiment", {"HEFT", "CPoP"});
  t.add_row("blast", {"1.00", ">5.0"});
  const std::string text = t.render();
  EXPECT_NE(text.find("My Experiment"), std::string::npos);
  EXPECT_NE(text.find("HEFT"), std::string::npos);
  EXPECT_NE(text.find("CPoP"), std::string::npos);
  EXPECT_NE(text.find("blast"), std::string::npos);
  EXPECT_NE(text.find(">5.0"), std::string::npos);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t("", {"col"});
  t.add_row("short", {"1"});
  t.add_row("a-much-longer-label", {"2"});
  const std::string text = t.render();
  // Both data cells must end at the same column.
  const auto line_end = [&](const char* needle) {
    const auto pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos);
    return text.find('\n', pos);
  };
  const auto l1 = text.find("short");
  const auto l2 = text.find("a-much-longer-label");
  const auto e1 = line_end("short") - l1;
  const auto e2 = line_end("a-much-longer-label") - l2;
  EXPECT_EQ(e1, e2);
}

TEST(Table, EmptyTitleOmitsHeaderLine) {
  Table t("", {"x"});
  t.add_row("r", {"1"});
  EXPECT_EQ(t.render().find("=="), std::string::npos);
}

}  // namespace
}  // namespace saga
