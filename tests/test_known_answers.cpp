#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "core/constraints.hpp"
#include "sched/registry.hpp"
#include "schedulers/bil.hpp"
#include "schedulers/brute_force.hpp"
#include "schedulers/wba.hpp"

/// Hand-computed schedules on tiny instances — these pin down the exact
/// semantics of each algorithm's selection and placement rules, beyond the
/// validity properties checked elsewhere.

namespace saga {
namespace {

/// Chain a(2) -> b(4), data 1; nodes speeds {1, 2}, link strength 0.5.
/// Optimal play: both tasks on the fast node, makespan 1 + 2 = 3.
ProblemInstance chain_ab() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 2.0);
  const TaskId b = inst.graph.add_task("b", 4.0);
  inst.graph.add_dependency(a, b, 1.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 2.0);
  inst.network.set_strength(0, 1, 0.5);
  return inst;
}

TEST(KnownAnswer, ChainAb_HeftColocatesOnFastNode) {
  const auto inst = chain_ab();
  const Schedule s = make_scheduler("HEFT")->schedule(inst);
  EXPECT_EQ(s.of_task(0).node, 1u);
  EXPECT_EQ(s.of_task(1).node, 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, ChainAb_CpopPinsCriticalPathToFastNode) {
  const auto inst = chain_ab();
  const Schedule s = make_scheduler("CPoP")->schedule(inst);
  // Both tasks lie on the (only) critical path; the CP node is the one
  // minimising total CP execution time = the fast node.
  EXPECT_EQ(s.of_task(0).node, 1u);
  EXPECT_EQ(s.of_task(1).node, 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, ChainAb_GdlAgrees) {
  // DL(a, v1) = SL(a) - 0 + (1.5 - 1) beats DL(a, v0) = SL(a) - 0 + (1.5-2);
  // then b's dynamic level also favours staying on the fast node.
  const auto inst = chain_ab();
  EXPECT_DOUBLE_EQ(make_scheduler("GDL")->schedule(inst).makespan(), 3.0);
}

TEST(KnownAnswer, ChainAb_MctGreedyFinishTimes) {
  const auto inst = chain_ab();
  const Schedule s = make_scheduler("MCT")->schedule(inst);
  // a: finish 2 on v0 vs 1 on v1 -> v1; b: finish 3 on v1 vs 2+2/0.5... v1.
  EXPECT_DOUBLE_EQ(s.of_task(0).finish, 1.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, ChainAb_MetIgnoresAvailability) {
  const auto inst = chain_ab();
  const Schedule s = make_scheduler("MET")->schedule(inst);
  EXPECT_EQ(s.of_task(0).node, 1u);  // fastest execution for every task
  EXPECT_EQ(s.of_task(1).node, 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, ChainAb_OlbPicksIdleNodeRegardlessOfSpeed) {
  const auto inst = chain_ab();
  const Schedule s = make_scheduler("OLB")->schedule(inst);
  // a goes to node 0 (both idle, id tie-break), paying the slow speed;
  // b then sees node 1 idle earlier... node1 avail 0 < node0 avail 2.
  EXPECT_EQ(s.of_task(0).node, 0u);
  EXPECT_EQ(s.of_task(1).node, 1u);
  // b: data from node0 finishes at 2, transfer 1/0.5 = 2, exec 4/2 = 2.
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

/// Fork a(1) -> {b(1), c(1)}; data a->b = 0, a->c = 10; 2 unit nodes with
/// unit links. Co-locating c with a avoids a 10-unit transfer.
ProblemInstance fork_heavy_edge() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 1.0);
  const TaskId c = inst.graph.add_task("c", 1.0);
  inst.graph.add_dependency(a, b, 0.0);
  inst.graph.add_dependency(a, c, 10.0);
  inst.network = Network(2);
  return inst;
}

TEST(KnownAnswer, ForkHeavyEdge_FcpUsesEnablingNode) {
  const auto inst = fork_heavy_edge();
  const Schedule s = make_scheduler("FCP")->schedule(inst);
  // c must stay with a (the enabling node); b can go either way but both
  // its candidates finish at 2. Total makespan 3 = a, then b and c
  // serialised/parallelised without paying the heavy edge.
  EXPECT_EQ(s.of_task(2).node, s.of_task(0).node);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, ForkHeavyEdge_FlbMatches) {
  const auto inst = fork_heavy_edge();
  const Schedule s = make_scheduler("FLB")->schedule(inst);
  EXPECT_EQ(s.of_task(2).node, s.of_task(0).node);
  EXPECT_LE(s.makespan(), 3.0 + 1e-12);
}

TEST(KnownAnswer, ForkHeavyEdge_HeftAvoidsTheTransfer) {
  const auto inst = fork_heavy_edge();
  const Schedule s = make_scheduler("HEFT")->schedule(inst);
  // b and c are both sinks with equal upward rank 1 (the heavy edge only
  // contributes to a's rank), so HEFT dispatches b first (id tie-break)
  // onto a's node, and c — whose EFT elsewhere would be 12 — lands on a's
  // node too: a, b, c serialised for makespan 3, never paying the edge.
  EXPECT_EQ(s.of_task(2).node, s.of_task(0).node);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, BilIsOptimalOnChains) {
  // The BIL paper proves optimality for linear graphs; with homogeneous
  // links our implementation realises the dynamic program exactly, so on
  // random chains (links normalised to 1) BIL must match BruteForce.
  const BilScheduler bil;
  const BruteForceScheduler oracle;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inst = pisa::random_chain_instance(seed);
    pisa::normalize_instance(inst, {.homogeneous_node_speeds = false,
                                    .homogeneous_link_strengths = true});
    const double bil_ms = bil.schedule(inst).makespan();
    const double opt = oracle.schedule(inst).makespan();
    EXPECT_NEAR(bil_ms, opt, 1e-9) << "seed " << seed;
  }
}

TEST(KnownAnswer, PeftFindsTheOptimumOnFig1) {
  // PEFT's optimistic cost table sees that spreading the diamond pays
  // communication HEFT's pure EFT rule underestimates; it serialises on
  // the fast node and hits the BruteForce optimum 5.9/1.5, beating HEFT's
  // 4.25 — exactly the improvement Arabnejad & Barbosa report.
  const auto inst = fig1_instance();
  EXPECT_NEAR(make_scheduler("PEFT")->schedule(inst).makespan(), 5.9 / 1.5, 1e-9);
  EXPECT_LT(make_scheduler("PEFT")->schedule(inst).makespan(),
            make_scheduler("HEFT")->schedule(inst).makespan());
}

TEST(KnownAnswer, WbaZeroToleranceOnChainAb) {
  // Greedy WBA (tolerance 0) minimises per-step makespan increase: a on
  // the fast node (increase 1 vs 2), b on the fast node (3 vs 2+2+2).
  const auto inst = chain_ab();
  const Schedule s = WbaScheduler(1, 0.0).schedule(inst);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(KnownAnswer, EtfHomogeneousForkOrder) {
  // Three independent unit tasks, two unit nodes: ETF starts two at time 0
  // (both nodes), the third at time 1 — makespan 2 regardless of order.
  ProblemInstance inst;
  for (int i = 0; i < 3; ++i) inst.graph.add_task(1.0);
  inst.network = Network(2);
  const Schedule s = make_scheduler("ETF")->schedule(inst);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(KnownAnswer, LmtLevelOrderOnDiamond) {
  // Diamond with a heavy middle task: LMT levelises {a}, {b, c}, {d} and
  // within level 1 schedules the heavy task first (claiming the fast node).
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId heavy = inst.graph.add_task("heavy", 8.0);
  const TaskId light = inst.graph.add_task("light", 1.0);
  const TaskId d = inst.graph.add_task("d", 1.0);
  inst.graph.add_dependency(a, heavy, 0.0);
  inst.graph.add_dependency(a, light, 0.0);
  inst.graph.add_dependency(heavy, d, 0.0);
  inst.graph.add_dependency(light, d, 0.0);
  inst.network = Network(2);
  inst.network.set_speed(0, 2.0);
  const Schedule s = make_scheduler("LMT")->schedule(inst);
  EXPECT_EQ(s.of_task(heavy).node, 0u);  // fast node
  EXPECT_TRUE(s.validate(inst).ok);
}

}  // namespace
}  // namespace saga
