#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"
#include "serve/telemetry.hpp"

/// \file test_concurrency_stress.cpp
/// TSan-targeted stress battery (label: concurrency). These tests create
/// deliberate contention on the shared machinery — pool submit vs. teardown
/// vs. gauge readers, telemetry increments vs. /metrics renders, keep-alive
/// clients vs. HttpServer::stop() — so a race detector sees every pairing
/// the production daemon can produce. They also pin the memory-order audit:
/// each assertion holds only if the relaxed counters are individually exact
/// and the drain paths synchronize through joins, which is exactly what the
/// audit comments in thread_pool.hpp / telemetry.hpp / http.hpp claim.

namespace saga {
namespace {

using namespace std::chrono_literals;

TEST(ConcurrencyStress, PoolSubmittersVersusGaugeReaders) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 300;
  std::atomic<bool> done{false};
  std::atomic<int> ran{0};

  // Gauge readers poll the relaxed counters the whole time the submitters
  // hammer the queue; TSan verifies the loads race with nothing.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::size_t last_completed = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const std::size_t completed = pool.jobs_completed();
        EXPECT_GE(completed, last_completed);  // monotone even mid-race
        last_completed = completed;
        (void)pool.queue_depth();
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[kSubmitters];
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kJobsEach; ++i) {
        futures[s].push_back(pool.submit([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(ran.load(), kSubmitters * kJobsEach);
  EXPECT_EQ(pool.jobs_completed(), static_cast<std::size_t>(kSubmitters * kJobsEach));
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ConcurrencyStress, PoolDestructionDrainsQueuedJobs) {
  // Destroy the pool while jobs are still queued behind a gate: the
  // destructor's documented contract is to drain outstanding work, so every
  // future must be satisfied — the stop_/cv_/join handshake races against
  // the workers' queue pops under TSan.
  std::vector<std::future<int>> futures;
  std::promise<void> release;
  auto gate = release.get_future().share();
  {
    ThreadPool pool(2);
    futures.push_back(pool.submit([gate] {
      gate.wait();
      return -1;
    }));
    for (int i = 0; i < 128; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    release.set_value();
    // ~ThreadPool runs here, concurrently with workers still popping.
  }
  EXPECT_EQ(futures.front().get(), -1);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i) + 1].get(), i);
  }
}

TEST(ConcurrencyStress, ParallelForUnderConcurrentGaugeReads) {
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)pool.queue_depth();
      (void)pool.jobs_completed();
    }
  });
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> total{0};
    pool.parallel_for(256, [&](std::size_t i) { total.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(total.load(), 255 * 256 / 2);
  }
  done.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(ConcurrencyStress, TelemetryCountersVersusMetricsRender) {
  // The ISSUE's expected race candidate: counter read-modify-write during a
  // /metrics render. Writers hammer record_request/record_arena while a
  // reader renders the full Prometheus exposition; afterwards the counters
  // must be exact (no lost increments) — the relaxed fetch_adds guarantee
  // this, and TSan guarantees the render's loads were race-free.
  serve::Telemetry telemetry;
  constexpr int kWriters = 4;
  constexpr int kEach = 500;
  std::atomic<bool> done{false};
  std::thread renderer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string page = telemetry.render_prometheus({});
      EXPECT_NE(page.find("saga_requests_total"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kEach; ++i) {
        telemetry.record_request(serve::Endpoint::kSchedule, 200, 12.5);
        telemetry.record_request(serve::Endpoint::kCompare, 400, 3.0);
        telemetry.record_arena((i + w) % 2 == 0);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  renderer.join();

  EXPECT_EQ(telemetry.requests_total(), static_cast<std::uint64_t>(2 * kWriters * kEach));
  EXPECT_EQ(telemetry.requests(serve::Endpoint::kSchedule, 2),
            static_cast<std::uint64_t>(kWriters * kEach));
  EXPECT_EQ(telemetry.requests(serve::Endpoint::kCompare, 4),
            static_cast<std::uint64_t>(kWriters * kEach));
  EXPECT_EQ(telemetry.arena_hits() + telemetry.arena_misses(),
            static_cast<std::uint64_t>(kWriters * kEach));
  EXPECT_EQ(telemetry.latency().count(), static_cast<std::uint64_t>(2 * kWriters * kEach));
}

TEST(ConcurrencyStress, HistogramRecordVersusPercentileSnapshots) {
  FixedHistogram histogram = FixedHistogram::latency_us();
  constexpr int kWriters = 4;
  constexpr int kEach = 2000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    double last_p50 = 0.0;
    while (!done.load(std::memory_order_relaxed)) {
      const double p50 = histogram.percentile(0.5);
      EXPECT_GE(p50, 0.0);
      // Same value recorded throughout, so once the snapshot is non-empty
      // the percentile is pinned; it must never wobble downward.
      EXPECT_GE(p50, last_p50);
      last_p50 = p50;
      (void)histogram.counts();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) histogram.record(42.0);
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kWriters * kEach));
  EXPECT_DOUBLE_EQ(histogram.sum(), 42.0 * kWriters * kEach);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.5), 50.0);  // 42 µs -> 50 µs bucket
}

TEST(ConcurrencyStress, ServerStopDrainsUnderConcurrentKeepAliveClients) {
  // The ISSUE's second race candidate: HttpServer::stop() vs. in-flight
  // worker writes. Keep-alive clients loop requests while the main thread
  // stops the server mid-traffic; every response a client *does* receive
  // must be complete and well-formed (the drain writes in-flight responses
  // before joining), and the post-stop counters must be quiescent.
  serve::HttpServer::Options options;
  options.port = 0;
  options.threads = 3;
  std::atomic<std::uint64_t> handled{0};
  auto server = std::make_unique<serve::HttpServer>(options, [&](const serve::HttpRequest&) {
    handled.fetch_add(1, std::memory_order_relaxed);
    serve::HttpResponse resp;
    resp.body = "{\"pong\": true}\n";
    return resp;
  });
  const std::uint16_t port = server->port();

  constexpr int kClients = 3;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> halt{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        serve::HttpClient client(port);
        while (!halt.load(std::memory_order_relaxed)) {
          const serve::HttpResponse resp = client.request("GET", "/ping");
          ASSERT_EQ(resp.status, 200);
          ASSERT_EQ(resp.body, "{\"pong\": true}\n");
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::runtime_error&) {
        // Expected once the server stops: connection refused / closed.
      }
    });
  }

  // Let traffic build, then stop mid-flight.
  while (completed.load(std::memory_order_relaxed) < 20) std::this_thread::yield();
  server->stop();
  const std::uint64_t served_at_stop = server->requests_served();
  halt.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();

  // stop() returned with no request in flight: the served counter is final.
  EXPECT_EQ(server->requests_served(), served_at_stop);
  EXPECT_EQ(server->inflight(), 0u);
  // Every response a client completed was written by the server first.
  EXPECT_LE(completed.load(), server->requests_served());
  EXPECT_LE(server->requests_served(), handled.load());
  server.reset();  // double-stop via destructor must be idempotent
}

TEST(ConcurrencyStress, GaugeSamplerReadsPoolDuringStopDrain) {
  // Regression pin for a real race TSan caught: the CLI wires the service's
  // gauge sampler to read server.pool() (queue depth, jobs completed), so an
  // in-flight /metrics handler reads the pool_ pointer right up to its last
  // instruction — while stop() used to overwrite that pointer with
  // pool_.reset() *before* the workers were joined. stop() now quiesces the
  // pool via ThreadPool::shutdown() first and only then resets the pointer.
  // This test recreates the CLI wiring and stops mid-scrape; under TSan the
  // old ordering reports a data race on the unique_ptr.
  serve::ScheduleService service;
  auto server_slot = std::make_shared<std::atomic<serve::HttpServer*>>(nullptr);
  service.set_gauge_sampler([server_slot] {
    serve::Telemetry::Gauges gauges;
    if (const serve::HttpServer* server = server_slot->load(std::memory_order_acquire)) {
      gauges.queue_depth = server->pool().queue_depth();
      gauges.inflight = server->inflight();
      gauges.jobs_completed = server->pool().jobs_completed();
      gauges.connections = server->connections_accepted();
    }
    return gauges;
  });

  serve::HttpServer::Options options;
  options.port = 0;
  options.threads = 3;
  serve::HttpServer server(
      options, [&](const serve::HttpRequest& req) { return service.handle(req); });
  server_slot->store(&server, std::memory_order_release);

  constexpr int kClients = 3;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> halt{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      try {
        serve::HttpClient client(server.port());
        while (!halt.load(std::memory_order_relaxed)) {
          const serve::HttpResponse resp = client.request("GET", "/metrics");
          ASSERT_EQ(resp.status, 200);
          ASSERT_NE(resp.body.find("saga_queue_depth"), std::string::npos);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const std::runtime_error&) {
        // Expected once the server stops.
      }
    });
  }

  // Stop while scrapes are in flight: workers are inside the gauge sampler,
  // reading server.pool(), as stop() tears the pool down.
  while (completed.load(std::memory_order_relaxed) < 20) std::this_thread::yield();
  server.stop();
  halt.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.inflight(), 0u);
}

TEST(ConcurrencyStress, ServiceHandlersVersusMetricsScrapes) {
  // Full-stack pairing: worker threads run real /v1/schedule handlers
  // (thread-local arena cache + telemetry) while another thread scrapes
  // /metrics through the same service, in-process.
  serve::ScheduleService service;
  ThreadPool pool(3);
  serve::HttpRequest schedule;
  schedule.method = "POST";
  schedule.target = "/v1/schedule";
  schedule.body = "{\"scheduler\": \"heft\", \"dataset\": \"chains?chains=2&length=3\"}";

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    serve::HttpRequest metrics;
    metrics.method = "GET";
    metrics.target = "/metrics";
    while (!done.load(std::memory_order_relaxed)) {
      const serve::HttpResponse resp = service.handle(metrics);
      EXPECT_EQ(resp.status, 200);
    }
  });

  std::optional<std::string> first_body;
  std::mutex first_mutex;
  pool.parallel_for(64, [&](std::size_t) {
    const serve::HttpResponse resp = service.handle(schedule);
    ASSERT_EQ(resp.status, 200) << resp.body;
    std::lock_guard lock(first_mutex);
    if (!first_body) {
      first_body = resp.body;
    } else {
      // Byte-determinism pin: identical requests, any worker, same body.
      EXPECT_EQ(resp.body, *first_body);
    }
  });
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(service.telemetry().requests(serve::Endpoint::kSchedule, 2), 64u);
}

}  // namespace
}  // namespace saga
