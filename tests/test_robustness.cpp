// Pins for stochastic::reexecute's edge cases and the Monte-Carlo
// robustness protocol built on it. reexecute is the plan-then-execute
// kernel the discrete-event simulator replays per job, so its exactness on
// degenerate plans (empty schedules, zero-cost tasks, tied planned starts)
// is load-bearing for the simulator's zero-fault guarantees too.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "graph/network.hpp"
#include "graph/problem_instance.hpp"
#include "graph/task_graph.hpp"
#include "sched/registry.hpp"
#include "sched/schedule.hpp"
#include "stochastic/robustness.hpp"
#include "stochastic/stochastic_instance.hpp"

namespace {

using namespace saga;
using stochastic::evaluate_robustness;
using stochastic::reexecute;
using stochastic::StochasticInstance;

// An empty planned schedule replays an empty instance to an empty schedule.
TEST(Reexecute, EmptyScheduleReplaysEmptyInstance) {
  const ProblemInstance empty;  // 1 node, no tasks
  const Schedule replayed = reexecute(Schedule{}, empty);
  EXPECT_EQ(replayed.size(), 0u);
  EXPECT_EQ(replayed.makespan(), 0.0);
}

// A plan that does not cover a task of the realized instance is a caller
// bug and throws rather than silently dropping work.
TEST(Reexecute, MissingTaskThrows) {
  ProblemInstance inst;
  inst.graph.add_task(1.0);
  inst.graph.add_task(2.0);
  Schedule partial;
  partial.add({0, 0, 0.0, 1.0});  // covers task 0 only
  EXPECT_THROW((void)reexecute(partial, inst), std::invalid_argument);
  EXPECT_THROW((void)reexecute(Schedule{}, inst), std::invalid_argument);
}

// Replaying a plan under the exact weights it was planned with reproduces
// it bit for bit — placements, starts, and finishes.
TEST(Reexecute, UnchangedWeightsReproduceThePlanExactly) {
  const ProblemInstance inst = fig1_instance();
  for (const std::string name : {"HEFT", "CPoP", "MinMin"}) {
    const Schedule planned = make_scheduler(name)->schedule(inst);
    const Schedule replayed = reexecute(planned, inst);
    ASSERT_EQ(replayed.size(), planned.size()) << name;
    for (const Assignment& a : planned.assignments()) {
      const Assignment& r = replayed.of_task(a.task);
      EXPECT_EQ(r.node, a.node) << name << " task " << a.task;
      EXPECT_EQ(r.start, a.start) << name << " task " << a.task;
      EXPECT_EQ(r.finish, a.finish) << name << " task " << a.task;
    }
    EXPECT_EQ(replayed.makespan(), planned.makespan()) << name;
  }
}

// Zero-cost tasks produce tied planned starts and finishes; the dispatch
// rank (start, finish, task id) keeps the replay order total, so the
// replay is still exact instead of order-dependent.
TEST(Reexecute, ZeroCostTiesReplayExactly) {
  ProblemInstance inst;
  inst.network = Network(1);
  const TaskId a = inst.graph.add_task(0.0);
  const TaskId b = inst.graph.add_task(0.0);
  const TaskId c = inst.graph.add_task(1.0);
  inst.graph.add_dependency(a, b, 0.0);
  inst.graph.add_dependency(b, c, 0.0);

  const Schedule planned = make_scheduler("HEFT")->schedule(inst);
  const Schedule replayed = reexecute(planned, inst);
  ASSERT_EQ(replayed.size(), 3u);
  for (const Assignment& p : planned.assignments()) {
    const Assignment& r = replayed.of_task(p.task);
    EXPECT_EQ(r.start, p.start) << "task " << p.task;
    EXPECT_EQ(r.finish, p.finish) << "task " << p.task;
  }
  EXPECT_TRUE(replayed.validate(inst).ok);
}

// Re-executing under perturbed weights still yields a valid timeline for
// the realized instance (no overlaps, dependencies respected).
TEST(Reexecute, RealizedScheduleIsValidUnderPerturbedWeights) {
  const ProblemInstance inst = fig1_instance();
  const Schedule planned = make_scheduler("HEFT")->schedule(inst);
  StochasticInstance stochastic(inst);
  stochastic.apply_relative_noise(0.3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const ProblemInstance realized = stochastic.realize(seed);
    const Schedule replayed = reexecute(planned, realized);
    const auto validation = replayed.validate(realized);
    EXPECT_TRUE(validation.ok) << "seed " << seed << ": " << validation.message;
  }
}

// On a deterministic (point-mass) stochastic instance, every realisation
// is the mean instance: realized == planned makespan, regret exactly 1.
TEST(Robustness, DeterministicInstanceHasNoSpreadAndUnitRegret) {
  const StochasticInstance stochastic(fig1_instance());
  ASSERT_TRUE(stochastic.is_deterministic());
  const auto report = evaluate_robustness(*make_scheduler("HEFT"), stochastic, 4, 42);
  EXPECT_EQ(report.realized.count, 4u);
  EXPECT_EQ(report.realized.min, report.planned_makespan);
  EXPECT_EQ(report.realized.max, report.planned_makespan);
  EXPECT_EQ(report.regret.min, 1.0);
  EXPECT_EQ(report.regret.max, 1.0);
}

// The evaluation is deterministic in its seed and actually spreads under
// noise.
TEST(Robustness, EvaluationIsSeedDeterministic) {
  StochasticInstance stochastic(fig1_instance());
  stochastic.apply_relative_noise(0.3);
  const auto scheduler = make_scheduler("HEFT");
  const auto first = evaluate_robustness(*scheduler, stochastic, 16, 7);
  const auto second = evaluate_robustness(*scheduler, stochastic, 16, 7);
  EXPECT_EQ(first.realized.mean, second.realized.mean);  // bitwise
  EXPECT_EQ(first.realized.stddev, second.realized.stddev);
  EXPECT_EQ(first.regret.mean, second.regret.mean);
  EXPECT_LT(first.realized.min, first.realized.max);

  const auto other = evaluate_robustness(*scheduler, stochastic, 16, 8);
  EXPECT_NE(other.realized.mean, first.realized.mean);
}

}  // namespace
