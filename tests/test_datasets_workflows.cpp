#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "datasets/chameleon.hpp"
#include "datasets/registry.hpp"
#include "datasets/workflows/blast.hpp"
#include "datasets/workflows/bwa.hpp"
#include "datasets/workflows/cycles.hpp"
#include "datasets/workflows/epigenomics.hpp"
#include "datasets/workflows/genome.hpp"
#include "datasets/workflows/montage.hpp"
#include "datasets/workflows/seismology.hpp"
#include "datasets/workflows/soykb.hpp"
#include "datasets/workflows/srasearch.hpp"

namespace saga {
namespace {

using namespace saga::workflows;

TEST(Chameleon, LinksAreInfinite) {
  const Network net = datasets::chameleon_network(1);
  for (NodeId a = 0; a < net.node_count(); ++a) {
    for (NodeId b = a + 1; b < net.node_count(); ++b) {
      EXPECT_TRUE(std::isinf(net.strength(a, b)));
    }
  }
}

TEST(Chameleon, SpeedsNearHomogeneous) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Network net = datasets::chameleon_network(seed);
    EXPECT_GE(net.node_count(), 4u);
    EXPECT_LE(net.node_count(), 12u);
    for (NodeId v = 0; v < net.node_count(); ++v) {
      EXPECT_GE(net.speed(v), 0.5);
      EXPECT_LE(net.speed(v), 1.5);
    }
  }
}

TEST(Blast, ForkJoinStructure) {
  Rng rng(1);
  const TaskGraph g = make_blast_graph(rng);
  // One split source; two merge sinks.
  ASSERT_EQ(g.sources().size(), 1u);
  ASSERT_EQ(g.sinks().size(), 2u);
  const TaskId split = g.sources()[0];
  EXPECT_EQ(g.name(split), "split_fasta");
  const std::size_t shards = g.successors(split).size();
  EXPECT_GE(shards, 8u);
  EXPECT_LE(shards, 24u);
  // Every shard feeds both merge tasks.
  for (TaskId sink : g.sinks()) EXPECT_EQ(g.predecessors(sink).size(), shards);
  EXPECT_EQ(g.task_count(), shards + 3);
}

TEST(Bwa, TwoHeadsFeedEveryAlignShard) {
  Rng rng(2);
  const TaskGraph g = make_bwa_graph(rng);
  ASSERT_EQ(g.sources().size(), 2u);
  ASSERT_EQ(g.sinks().size(), 1u);
  const std::size_t shards = g.task_count() - 3;
  EXPECT_EQ(g.predecessors(g.sinks()[0]).size(), shards);
  for (TaskId src : g.sources()) EXPECT_EQ(g.successors(src).size(), shards);
}

TEST(Cycles, PipelinesAreIndependentChainsIntoSummary) {
  Rng rng(3);
  const TaskGraph g = make_cycles_graph(rng);
  ASSERT_EQ(g.sinks().size(), 1u);
  const TaskId summary = g.sinks()[0];
  const std::size_t pipelines = g.predecessors(summary).size();
  EXPECT_GE(pipelines, 4u);
  EXPECT_LE(pipelines, 12u);
  EXPECT_EQ(g.task_count(), pipelines * 4 + 1);
  EXPECT_EQ(g.sources().size(), pipelines);
}

TEST(Epigenomics, LanesAreChainsBetweenSplitAndMerge) {
  Rng rng(4);
  const TaskGraph g = make_epigenomics_graph(rng);
  ASSERT_EQ(g.sources().size(), 1u);
  ASSERT_EQ(g.sinks().size(), 1u);
  const TaskId split = g.sources()[0];
  const std::size_t lanes = g.successors(split).size();
  EXPECT_GE(lanes, 4u);
  EXPECT_LE(lanes, 10u);
  // fastqSplit + 4 per lane + mapMerge + maqIndex + pileup.
  EXPECT_EQ(g.task_count(), lanes * 4 + 4);
}

TEST(Genome, AnalysesDependOnBothMergeAndSifting) {
  Rng rng(5);
  const TaskGraph g = make_genome_graph(rng);
  // Find merge and sifting by name.
  TaskId merge = 0, sifting = 0;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t) == "individuals_merge") merge = t;
    if (g.name(t) == "sifting") sifting = t;
  }
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t).starts_with("mutation_overlap") || g.name(t).starts_with("frequency")) {
      EXPECT_TRUE(g.has_dependency(merge, t));
      EXPECT_TRUE(g.has_dependency(sifting, t));
    }
  }
}

TEST(Montage, LayeredMosaicShape) {
  Rng rng(6);
  const TaskGraph g = make_montage_graph(rng);
  ASSERT_EQ(g.sinks().size(), 1u);
  TaskId jpeg = g.sinks()[0];
  EXPECT_EQ(g.name(jpeg), "mJPEG");
  // mProject tasks are the only sources.
  for (TaskId src : g.sources()) EXPECT_TRUE(g.name(src).starts_with("mProject"));
  // Every mDiffFit consumes exactly two projections.
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.name(t).starts_with("mDiffFit")) {
      EXPECT_EQ(g.predecessors(t).size(), 2u);
    }
    if (g.name(t).starts_with("mBackground")) {
      EXPECT_EQ(g.predecessors(t).size(), 2u);
    }
  }
}

TEST(Seismology, PureForkJoin) {
  Rng rng(7);
  const TaskGraph g = make_seismology_graph(rng);
  ASSERT_EQ(g.sinks().size(), 1u);
  const TaskId sift = g.sinks()[0];
  EXPECT_EQ(g.predecessors(sift).size(), g.task_count() - 1);
  EXPECT_EQ(g.sources().size(), g.task_count() - 1);
}

TEST(Soykb, PerSampleChainsJoinAtCombine) {
  Rng rng(8);
  const TaskGraph g = make_soykb_graph(rng);
  ASSERT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.name(g.sinks()[0]), "filtering");
  const std::size_t samples = g.sources().size();
  EXPECT_GE(samples, 3u);
  EXPECT_LE(samples, 8u);
  EXPECT_EQ(g.task_count(), samples * 7 + 3);
}

TEST(Srasearch, RigidFourNPlusFourStructure) {
  Rng rng(9);
  const TaskGraph g = make_srasearch_graph(rng);
  ASSERT_EQ(g.sources().size(), 1u);
  ASSERT_EQ(g.sinks().size(), 1u);
  const TaskId bootstrap = g.sources()[0];
  const std::size_t n = g.successors(bootstrap).size() / 2;  // prefetch + metadata
  EXPECT_GE(n, 4u);
  EXPECT_LE(n, 12u);
  EXPECT_EQ(g.task_count(), 4 * n + 4);
  const TaskId report = g.sinks()[0];
  EXPECT_EQ(g.predecessors(report).size(), 2u);  // the two mergers
}

TEST(WorkflowSampling, RuntimesStayInsideTraceEnvelope) {
  Rng rng(10);
  const auto& stats = blast_stats();
  for (int i = 0; i < 1000; ++i) {
    const double r = sample_runtime(rng, 600.0, stats);
    EXPECT_GE(r, stats.min_runtime);
    EXPECT_LE(r, stats.max_runtime);
  }
}

TEST(SetHomogeneousCcr, HitsRequestedCcr) {
  for (double ccr : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    auto inst = workflows::blast_instance(3);
    set_homogeneous_ccr(inst, ccr);
    EXPECT_NEAR(inst.ccr(), ccr, 1e-9) << "ccr " << ccr;
    EXPECT_TRUE(inst.network.homogeneous_strengths());
  }
}

TEST(SetHomogeneousCcr, NoOpOnEdgelessGraph) {
  ProblemInstance inst;
  inst.graph.add_task("only", 1.0);
  inst.network = Network(2);
  set_homogeneous_ccr(inst, 1.0);
  EXPECT_DOUBLE_EQ(inst.network.strength(0, 1), 1.0);
}

TEST(WorkflowRegistry, AllNineNamesGenerate) {
  for (const auto& name : datasets::workflow_dataset_names()) {
    const auto inst = datasets::generate_instance(name, 1, 0);
    EXPECT_GT(inst.graph.task_count(), 0u) << name;
    EXPECT_GT(inst.network.node_count(), 0u) << name;
  }
  EXPECT_EQ(datasets::workflow_dataset_names().size(), 9u);
}

}  // namespace
}  // namespace saga
