#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/serialization.hpp"

namespace saga {
namespace {

TEST(Serialization, RoundTripsFig1Exactly) {
  const ProblemInstance original = fig1_instance();
  const ProblemInstance copy = instance_from_string(instance_to_string(original));

  ASSERT_EQ(copy.graph.task_count(), original.graph.task_count());
  EXPECT_TRUE(copy.graph.structurally_equal(original.graph));
  for (TaskId t = 0; t < original.graph.task_count(); ++t) {
    EXPECT_EQ(copy.graph.name(t), original.graph.name(t));
  }
  ASSERT_EQ(copy.network.node_count(), original.network.node_count());
  for (NodeId v = 0; v < original.network.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(copy.network.speed(v), original.network.speed(v));
  }
  for (NodeId a = 0; a < original.network.node_count(); ++a) {
    for (NodeId b = a + 1; b < original.network.node_count(); ++b) {
      EXPECT_DOUBLE_EQ(copy.network.strength(a, b), original.network.strength(a, b));
    }
  }
}

TEST(Serialization, RoundTripsInfiniteStrength) {
  ProblemInstance inst;
  inst.graph.add_task("only", 1.0);
  inst.network = Network(2);
  inst.network.set_strength(0, 1, Network::kInfiniteStrength);
  const auto copy = instance_from_string(instance_to_string(inst));
  EXPECT_TRUE(std::isinf(copy.network.strength(0, 1)));
}

TEST(Serialization, RoundTripsExtremePrecision) {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 0.1 + 0.2);  // 0.30000000000000004
  const TaskId b = inst.graph.add_task("b", 1e-300);
  inst.graph.add_dependency(a, b, 1e300);
  inst.network = Network(1);
  const auto copy = instance_from_string(instance_to_string(inst));
  EXPECT_EQ(copy.graph.cost(0), inst.graph.cost(0));
  EXPECT_EQ(copy.graph.cost(1), inst.graph.cost(1));
  EXPECT_EQ(copy.graph.dependency_cost(0, 1), inst.graph.dependency_cost(0, 1));
}

TEST(Serialization, IgnoresCommentsAndBlankLines) {
  const ProblemInstance original = fig1_instance();
  std::string text = instance_to_string(original);
  text.insert(0, "# leading comment\n\n");
  const auto copy = instance_from_string(text);
  EXPECT_TRUE(copy.graph.structurally_equal(original.graph));
}

TEST(Serialization, RejectsWrongMagic) {
  EXPECT_THROW((void)instance_from_string("bogus v1\ntasks 0\n"), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedInput) {
  std::string text = instance_to_string(fig1_instance());
  text.resize(text.size() / 2);
  EXPECT_THROW((void)instance_from_string(text), std::runtime_error);
}

TEST(Serialization, RejectsBadNumbers) {
  const std::string text =
      "saga-instance v1\ntasks 1\ntask 0 a notanumber\ndeps 0\nnodes 1\nnode 0 1\nlinks 0\n";
  EXPECT_THROW((void)instance_from_string(text), std::runtime_error);
}

TEST(Serialization, RejectsNonDenseTaskIds) {
  const std::string text =
      "saga-instance v1\ntasks 1\ntask 5 a 1.0\ndeps 0\nnodes 1\nnode 0 1\nlinks 0\n";
  EXPECT_THROW((void)instance_from_string(text), std::runtime_error);
}

TEST(Serialization, RejectsCyclicDependencies) {
  const std::string text =
      "saga-instance v1\n"
      "tasks 2\ntask 0 a 1\ntask 1 b 1\n"
      "deps 2\ndep 0 1 1\ndep 1 0 1\n"
      "nodes 1\nnode 0 1\nlinks 0\n";
  EXPECT_THROW((void)instance_from_string(text), std::runtime_error);
}

TEST(Serialization, RejectsWrongLinkCount) {
  const std::string text =
      "saga-instance v1\n"
      "tasks 1\ntask 0 a 1\ndeps 0\n"
      "nodes 3\nnode 0 1\nnode 1 1\nnode 2 1\n"
      "links 1\nlink 0 1 1\n";
  EXPECT_THROW((void)instance_from_string(text), std::runtime_error);
}

TEST(Serialization, EmptyGraphRoundTrips) {
  ProblemInstance inst;
  inst.network = Network(1);
  const auto copy = instance_from_string(instance_to_string(inst));
  EXPECT_EQ(copy.graph.task_count(), 0u);
  EXPECT_EQ(copy.network.node_count(), 1u);
}

}  // namespace
}  // namespace saga
