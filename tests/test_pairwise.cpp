#include <gtest/gtest.h>

#include <cmath>

#include "core/pairwise.hpp"

namespace saga::pisa {
namespace {

PairwiseOptions quick_options() {
  PairwiseOptions options;
  options.pisa.restarts = 2;
  options.pisa.params.max_iterations = 60;
  return options;
}

TEST(Pairwise, DiagonalIsNaNOffDiagonalPositive) {
  const std::vector<std::string> names = {"HEFT", "CPoP", "FastestNode"};
  const auto result = pairwise_compare(names, quick_options(), 1);
  ASSERT_EQ(result.ratio.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) {
        EXPECT_TRUE(std::isnan(result.cell(i, j)));
      } else {
        EXPECT_GT(result.cell(i, j), 0.0);
      }
    }
  }
}

TEST(Pairwise, ParallelAndSerialAgreeExactly) {
  // Determinism across execution strategies: every cell derives its own
  // RNG stream, so thread scheduling cannot change results.
  const std::vector<std::string> names = {"HEFT", "MCT", "OLB"};
  auto options = quick_options();
  options.parallel = true;
  const auto parallel = pairwise_compare(names, options, 3);
  options.parallel = false;
  const auto serial = pairwise_compare(names, options, 3);
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(parallel.cell(i, j), serial.cell(i, j)) << i << "," << j;
    }
  }
}

TEST(Pairwise, WorstPerTargetIsColumnMax) {
  PairwiseResult result;
  result.scheduler_names = {"A", "B"};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  result.ratio = {{nan, 2.0}, {3.0, nan}};
  const auto worst = result.worst_per_target();
  EXPECT_DOUBLE_EQ(worst[0], 3.0);
  EXPECT_DOUBLE_EQ(worst[1], 2.0);
}

TEST(Pairwise, AdversarialRatiosExceedOne) {
  // For HEFT vs FastestNode both directions should find a losing instance
  // (the paper: nearly every pair has instances going both ways).
  const std::vector<std::string> names = {"HEFT", "FastestNode"};
  PairwiseOptions options;
  options.pisa.restarts = 3;
  const auto result = pairwise_compare(names, options, 5);
  EXPECT_GT(result.cell(1, 0), 1.0);  // HEFT vs baseline FastestNode
  EXPECT_GT(result.cell(0, 1), 1.0);  // FastestNode vs baseline HEFT
}

TEST(Pairwise, SeedChangesResults) {
  const std::vector<std::string> names = {"MCT", "OLB"};
  const auto a = pairwise_compare(names, quick_options(), 10);
  const auto b = pairwise_compare(names, quick_options(), 11);
  // At least one cell should differ across seeds (continuous ratios).
  EXPECT_TRUE(a.cell(0, 1) != b.cell(0, 1) || a.cell(1, 0) != b.cell(1, 0));
}

}  // namespace
}  // namespace saga::pisa
