#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace saga {
namespace {

TEST(Pcg32, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Pcg32>);
  Pcg32 gen(7);
  EXPECT_EQ(Pcg32::min(), 0u);
  EXPECT_EQ(Pcg32::max(), 0xffffffffu);
  (void)gen();
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(DeriveSeed, DistinctCoordinatesGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 50; ++i) {
    for (std::uint64_t j = 0; j < 50; ++j) {
      seeds.insert(derive_seed(42, {i, j}));
    }
  }
  EXPECT_EQ(seeds.size(), 2500u);
}

TEST(DeriveSeed, OrderOfCoordinatesMatters) {
  EXPECT_NE(derive_seed(42, {1, 2}), derive_seed(42, {2, 1}));
}

TEST(DeriveSeed, MasterSeedMatters) {
  EXPECT_NE(derive_seed(1, {7}), derive_seed(2, {7}));
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 2.25);
    ASSERT_GE(x, -3.5);
    ASSERT_LT(x, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(7);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(3, 7);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-10, -5);
    ASSERT_GE(x, -10);
    ASSERT_LE(x, -5);
  }
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.index(13), 13u);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(35.0, 25.0 / 3.0);
  EXPECT_NEAR(sum / n, 35.0, 0.2);
}

TEST(Rng, ClippedGaussianRespectsBounds) {
  Rng rng(14);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.clipped_gaussian(1.0, 1.0 / 3.0, 0.0, 2.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 2.0);
  }
}

TEST(Rng, ClippedGaussianClipsToExactBoundsOnOutliers) {
  Rng rng(15);
  // Huge stddev forces frequent clipping to the exact endpoints.
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.clipped_gaussian(0.5, 100.0, 0.0, 1.0);
    if (x == 0.0) hit_lo = true;
    if (x == 1.0) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyTracksProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFavorsHeavyWeights) {
  Rng rng(18);
  const std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.9, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(weights));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(20);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(21);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(22);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(23);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(99);
  const double first = a.uniform();
  a.reseed(99);
  EXPECT_EQ(a.uniform(), first);
}

}  // namespace
}  // namespace saga
