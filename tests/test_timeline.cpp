#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/timeline.hpp"

namespace saga {
namespace {

ProblemInstance chain3() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 2.0);
  const TaskId c = inst.graph.add_task("c", 1.0);
  inst.graph.add_dependency(a, b, 1.0);
  inst.graph.add_dependency(b, c, 1.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 2.0);
  return inst;
}

TEST(Timeline, InitialState) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  EXPECT_EQ(builder.placed_count(), 0u);
  EXPECT_FALSE(builder.complete());
  const auto ready = builder.ready_tasks();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);
  EXPECT_TRUE(builder.ready(0));
  EXPECT_FALSE(builder.ready(1));
  EXPECT_EQ(builder.unplaced_predecessors(1), 1u);
  EXPECT_DOUBLE_EQ(builder.current_makespan(), 0.0);
}

TEST(Timeline, ExecTimeUsesNodeSpeed) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  EXPECT_DOUBLE_EQ(builder.exec_time(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(builder.exec_time(1, 1), 1.0);
}

TEST(Timeline, DataReadyTimeIncludesCommDelay) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);  // finishes at 1.0
  EXPECT_DOUBLE_EQ(builder.data_ready_time(1, 0), 1.0);  // co-located
  EXPECT_DOUBLE_EQ(builder.data_ready_time(1, 1), 2.0);  // + 1/1 transfer
}

TEST(Timeline, PlaceUnlocksSuccessors) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place_earliest(0, 0, false);
  EXPECT_TRUE(builder.ready(1));
  EXPECT_FALSE(builder.ready(2));
  builder.place_earliest(1, 0, false);
  EXPECT_TRUE(builder.ready(2));
}

TEST(Timeline, PlaceRejectsDoublePlacement) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);
  EXPECT_THROW(builder.place(0, 1, 5.0), std::logic_error);
}

TEST(Timeline, PlaceRejectsUnreadyTask) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  EXPECT_THROW(builder.place(2, 0, 0.0), std::logic_error);
}

TEST(Timeline, AssignmentOfThrowsUntilPlaced) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  EXPECT_THROW((void)builder.assignment_of(0), std::logic_error);
  builder.place(0, 1, 0.0);
  EXPECT_EQ(builder.assignment_of(0).node, 1u);
  EXPECT_DOUBLE_EQ(builder.assignment_of(0).finish, 0.5);
}

TEST(Timeline, NodeAvailableTracksLastInterval) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  EXPECT_DOUBLE_EQ(builder.node_available(0), 0.0);
  builder.place(0, 0, 0.0);
  EXPECT_DOUBLE_EQ(builder.node_available(0), 1.0);
  EXPECT_DOUBLE_EQ(builder.node_available(1), 0.0);
}

TEST(Timeline, AppendStartIsMaxOfReadyAndAvailable) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);
  // On node 1 data arrives at 2.0 and the node is idle: start = 2.0.
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 1, false), 2.0);
  // On node 0 the node frees at 1.0 and data is local: start = 1.0.
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 0, false), 1.0);
}

TEST(Timeline, InsertionFindsGapBeforeExistingWork) {
  ProblemInstance inst;
  inst.graph.add_task("big", 4.0);
  inst.graph.add_task("small", 1.0);
  inst.network = Network(1);
  TimelineBuilder builder(inst);
  builder.place(0, 0, 3.0);  // deliberately delayed: idle gap [0, 3)
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 0, /*insertion=*/true), 0.0);
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 0, /*insertion=*/false), 7.0);
}

TEST(Timeline, InsertionSkipsTooSmallGaps) {
  ProblemInstance inst;
  inst.graph.add_task("first", 1.0);
  inst.graph.add_task("second", 1.0);
  inst.graph.add_task("wide", 2.0);
  inst.network = Network(1);
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);   // [0,1)
  builder.place(1, 0, 2.5);   // [2.5,3.5); gap [1,2.5) of width 1.5
  // A 2-unit task cannot use the 1.5 gap; it must go after 3.5.
  EXPECT_DOUBLE_EQ(builder.earliest_start(2, 0, true), 3.5);
}

TEST(Timeline, InsertionUsesExactFitGap) {
  ProblemInstance inst;
  inst.graph.add_task("first", 1.0);
  inst.graph.add_task("second", 1.0);
  inst.graph.add_task("fit", 2.0);
  inst.network = Network(1);
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);  // [0,1)
  builder.place(1, 0, 3.0);  // [3,4); gap [1,3) of width exactly 2
  EXPECT_DOUBLE_EQ(builder.earliest_start(2, 0, true), 1.0);
}

TEST(Timeline, InsertionRespectsReadyTime) {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 1.0);
  inst.graph.add_dependency(a, b, 5.0);
  const TaskId other = inst.graph.add_task("other", 1.0);
  (void)other;
  inst.network = Network(2);
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);
  builder.place(2, 1, 8.0);  // node 1 busy [8,9), idle before
  // b's data reaches node 1 at 1 + 5 = 6; gap [6,8) fits the 1-unit task.
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 1, true), 6.0);
}

TEST(Timeline, ToScheduleRequiresCompletion) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place_earliest(0, 0, false);
  EXPECT_THROW((void)builder.to_schedule(), std::logic_error);
  builder.place_earliest(1, 0, false);
  builder.place_earliest(2, 0, false);
  ASSERT_TRUE(builder.complete());
  const Schedule s = builder.to_schedule();
  EXPECT_TRUE(s.validate(inst).ok);
  EXPECT_DOUBLE_EQ(s.makespan(), builder.current_makespan());
}

TEST(Timeline, MakespanTracksPlacements) {
  const auto inst = chain3();
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);
  EXPECT_DOUBLE_EQ(builder.current_makespan(), 1.0);
  builder.place(1, 1, 2.0);  // exec 1.0 on fast node, finishes 3.0
  EXPECT_DOUBLE_EQ(builder.current_makespan(), 3.0);
}

/// Independent tasks with the given costs on a single unit-speed node, so
/// exec time == cost and placements can shape the busy lane freely.
ProblemInstance independent_tasks(std::initializer_list<double> costs) {
  ProblemInstance inst;
  for (double c : costs) inst.graph.add_task(c);
  inst.network = Network(1);
  return inst;
}

TEST(TimelineGaps, ExactFitGapIsUsed) {
  const auto inst = independent_tasks({1.0, 1.0, 2.0});
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);  // busy [0, 1)
  builder.place(1, 0, 3.0);  // busy [3, 4)
  // Task 2 lasts exactly 2: the gap [1, 3) fits with no slack.
  EXPECT_DOUBLE_EQ(builder.earliest_start(2, 0, /*insertion=*/true), 1.0);
}

TEST(TimelineGaps, TooSmallGapIsSkipped) {
  const auto inst = independent_tasks({1.0, 1.0, 2.0});
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);  // busy [0, 1)
  builder.place(1, 0, 2.5);  // busy [2.5, 3.5): gap [1, 2.5) is half a unit short
  EXPECT_DOUBLE_EQ(builder.earliest_start(2, 0, /*insertion=*/true), 3.5);
}

TEST(TimelineGaps, InsertionBeforeFirstInterval) {
  const auto inst = independent_tasks({1.0, 2.0});
  TimelineBuilder builder(inst);
  builder.place(0, 0, 2.0);  // busy [2, 3)
  // The leading idle stretch [0, 2) hosts the 2-unit task.
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 0, /*insertion=*/true), 0.0);
}

TEST(TimelineGaps, ZeroLengthTaskSlotsAtBusyIntervalStart) {
  const auto inst = independent_tasks({1.0, 0.0});
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);  // busy [0, 1)
  // A zero-length task needs no idle time at all: it starts at its ready
  // time even though the node is busy there.
  EXPECT_DOUBLE_EQ(builder.earliest_start(1, 0, /*insertion=*/true), 0.0);
}

TEST(TimelineGaps, ZeroLengthIntervalDoesNotHideLaterBusyTime) {
  // Regression for the binary-search gap lookup: a zero-length interval
  // placed at the start boundary of a longer one must not break the
  // sorted-ends invariant the search relies on — a later insertion query
  // must still see the long interval.
  const auto inst = independent_tasks({1.0, 0.0, 1.0});
  TimelineBuilder builder(inst);
  builder.place(0, 0, 0.0);                             // busy [0, 1)
  builder.place(1, 0, 0.0);                             // zero-length at 0
  EXPECT_DOUBLE_EQ(builder.earliest_start(2, 0, /*insertion=*/true), 1.0);
  builder.place_earliest(2, 0, /*insertion=*/true);
  EXPECT_TRUE(builder.to_schedule().validate(inst).ok);
}

TEST(TimelineGaps, ReadyTimeLimitsTheLeadingGap) {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 1.0);
  const TaskId b = inst.graph.add_task("b", 1.5);
  const TaskId c = inst.graph.add_task("c", 1.0);
  inst.graph.add_dependency(a, b, 1.0);
  inst.network = Network(2);
  TimelineBuilder builder(inst);
  builder.place(a, 0, 0.0);  // finishes 1; b's data reaches node 1 at 2
  builder.place(c, 1, 2.5);  // node 1 busy [2.5, 3.5)
  EXPECT_DOUBLE_EQ(builder.data_ready_time(b, 1), 2.0);
  // Only [2, 2.5) of the leading gap is usable — too short for 1.5 units,
  // so b starts after c.
  EXPECT_DOUBLE_EQ(builder.earliest_start(b, 1, /*insertion=*/true), 3.5);
}

TEST(TimelineArenaReuse, RepeatedBuildsRecycleScratchAndAgree) {
  const auto inst = chain3();
  TimelineArena arena;
  double first_makespan = 0.0;
  for (int round = 0; round < 3; ++round) {
    TimelineBuilder builder(inst, &arena);
    builder.place_earliest(0, 0, false);
    builder.place_earliest(1, 1, false);
    builder.place_earliest(2, 0, false);
    const double m = builder.to_schedule().makespan();
    if (round == 0) {
      first_makespan = m;
    } else {
      EXPECT_EQ(m, first_makespan);
    }
  }
  // All scratch blocks returned to the pool once builders are destroyed.
  EXPECT_EQ(arena.pooled(), 1u);
}

TEST(TimelineArenaReuse, CopiedBuildersDrawFromTheSamePool) {
  const auto inst = chain3();
  TimelineArena arena;
  {
    TimelineBuilder builder(inst, &arena);
    builder.place_earliest(0, 0, false);
    TimelineBuilder branch = builder;  // second scratch from the pool
    branch.place_earliest(1, 1, false);
    // The copy is independent: the original still has task 1 pending.
    EXPECT_TRUE(builder.ready(1));
    EXPECT_FALSE(branch.ready(1));
    EXPECT_EQ(branch.placed_count(), 2u);
    EXPECT_EQ(builder.placed_count(), 1u);
  }
  EXPECT_EQ(arena.pooled(), 2u);
}

}  // namespace
}  // namespace saga
