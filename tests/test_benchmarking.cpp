#include <gtest/gtest.h>

#include "analysis/benchmarking.hpp"
#include "datasets/registry.hpp"

namespace saga::analysis {
namespace {

Dataset small_chains(std::size_t count) {
  return datasets::generate_dataset("chains", 5, count);
}

TEST(Benchmarking, RatiosAreAtLeastOne) {
  const auto result = benchmark_dataset(small_chains(10), {"HEFT", "CPoP", "MinMin"}, 1);
  for (const auto& sb : result.per_scheduler) {
    for (double r : sb.ratios) EXPECT_GE(r, 1.0);
  }
}

TEST(Benchmarking, SomeSchedulerAttainsTheBaselinePerInstance) {
  const auto result = benchmark_dataset(small_chains(10), {"HEFT", "CPoP", "MinMin"}, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& sb : result.per_scheduler) best = std::min(best, sb.ratios[i]);
    EXPECT_DOUBLE_EQ(best, 1.0);
  }
}

TEST(Benchmarking, OneRatioVectorPerScheduler) {
  const auto ds = small_chains(7);
  const auto result = benchmark_dataset(ds, {"HEFT", "OLB"}, 1);
  ASSERT_EQ(result.per_scheduler.size(), 2u);
  for (const auto& sb : result.per_scheduler) EXPECT_EQ(sb.ratios.size(), 7u);
  EXPECT_EQ(result.dataset, "chains");
}

TEST(Benchmarking, SummaryMatchesRatios) {
  const auto result = benchmark_dataset(small_chains(5), {"HEFT", "FastestNode"}, 1);
  for (const auto& sb : result.per_scheduler) {
    const auto s = summarize(sb.ratios);
    EXPECT_DOUBLE_EQ(sb.summary.max, s.max);
    EXPECT_DOUBLE_EQ(sb.summary.mean, s.mean);
  }
}

TEST(Benchmarking, ForSchedulerLookup) {
  const auto result = benchmark_dataset(small_chains(3), {"HEFT", "OLB"}, 1);
  EXPECT_EQ(result.for_scheduler("OLB").scheduler, "OLB");
  EXPECT_THROW((void)result.for_scheduler("CPoP"), std::out_of_range);
}

TEST(Benchmarking, DeterministicAcrossRuns) {
  const auto ds = small_chains(6);
  const auto a = benchmark_dataset(ds, {"HEFT", "WBA"}, 9);
  const auto b = benchmark_dataset(ds, {"HEFT", "WBA"}, 9);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_DOUBLE_EQ(a.per_scheduler[s].ratios[i], b.per_scheduler[s].ratios[i]);
    }
  }
}

TEST(Benchmarking, SingleSchedulerAlwaysRatioOne) {
  const auto result = benchmark_dataset(small_chains(4), {"MCT"}, 1);
  for (double r : result.for_scheduler("MCT").ratios) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Benchmarking, OlbNeverBeatsItsBetters) {
  // OLB ignores speeds entirely; across a dataset its max ratio should be
  // at least as bad as HEFT's.
  const auto result = benchmark_dataset(small_chains(20), {"HEFT", "OLB"}, 2);
  EXPECT_GE(result.for_scheduler("OLB").summary.max,
            result.for_scheduler("HEFT").summary.max);
}

}  // namespace
}  // namespace saga::analysis
