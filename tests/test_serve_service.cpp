#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "datasets/registry.hpp"
#include "exp/json.hpp"
#include "graph/problem_instance.hpp"
#include "sched/registry.hpp"
#include "serve/codec.hpp"
#include "serve/service.hpp"

namespace saga::serve {
namespace {

using exp::Json;

HttpRequest make_request(const std::string& method, const std::string& target,
                         const std::string& body = {}) {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.version = "HTTP/1.1";
  req.body = body;
  return req;
}

std::string schedule_body(const std::string& scheduler, const ProblemInstance& inst) {
  return Json::object({{"scheduler", Json::string(scheduler)},
                       {"instance", instance_to_json(inst)}})
             .dump() +
         "\n";
}

const std::string* header_of(const HttpResponse& resp, const std::string& name) {
  for (const auto& [key, value] : resp.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

TEST(ServeService, SchedulesInlineInstance) {
  ScheduleService service;
  const ProblemInstance inst = fig1_instance();
  const HttpResponse resp =
      service.handle(make_request("POST", "/v1/schedule", schedule_body("HEFT", inst)));
  ASSERT_EQ(resp.status, 200) << resp.body;

  const Json out = Json::parse(resp.body);
  EXPECT_EQ(out.find("scheduler")->as_string(), "HEFT");
  const Schedule direct = make_scheduler("HEFT")->schedule(inst);
  EXPECT_DOUBLE_EQ(out.find("makespan")->as_number(), direct.makespan());
  const Schedule decoded = schedule_from_json(*out.find("schedule"));
  EXPECT_TRUE(decoded.validate(inst).ok);
  // Wall-clock cost travels as a header, never in the deterministic body.
  EXPECT_NE(header_of(resp, "X-Saga-Timing-Us"), nullptr);
  EXPECT_EQ(resp.body.find("timing"), std::string::npos);
}

TEST(ServeService, SchedulesDatasetSpec) {
  ScheduleService service;
  const std::string body = R"({"scheduler": "HEFT", "dataset": "chains?length=8", "index": 1, "seed": 7})";
  const HttpResponse resp = service.handle(make_request("POST", "/v1/schedule", body));
  ASSERT_EQ(resp.status, 200) << resp.body;
  const ProblemInstance inst = datasets::generate_instance("chains?length=8", 7, 1);
  EXPECT_DOUBLE_EQ(Json::parse(resp.body).find("makespan")->as_number(),
                   make_scheduler("HEFT")->schedule(inst).makespan());
}

TEST(ServeService, TimingsAreOptIn) {
  ScheduleService service;
  const std::string body =
      R"({"scheduler": "HEFT", "dataset": "chains?length=6", "timings": true})";
  const HttpResponse resp = service.handle(make_request("POST", "/v1/schedule", body));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(Json::parse(resp.body).find("timing_us"), nullptr);
}

TEST(ServeService, CompareRanksSchedulers) {
  ScheduleService service;
  const ProblemInstance inst = fig1_instance();
  const std::string body = Json::object({{"schedulers", Json::array({Json::string("HEFT"),
                                                                     Json::string("CPoP"),
                                                                     Json::string("MCT")})},
                                         {"instance", instance_to_json(inst)}})
                               .dump();
  const HttpResponse resp = service.handle(make_request("POST", "/v1/compare", body));
  ASSERT_EQ(resp.status, 200) << resp.body;
  const Json out = Json::parse(resp.body);
  const auto& rows = out.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 3u);
  double best = rows[0].find("makespan")->as_number();
  for (const auto& row : rows) {
    const double makespan = row.find("makespan")->as_number();
    const std::string name = row.find("scheduler")->as_string();
    EXPECT_DOUBLE_EQ(makespan, make_scheduler(name)->schedule(inst).makespan());
    best = std::min(best, makespan);
  }
  EXPECT_DOUBLE_EQ(out.find("best")->find("makespan")->as_number(), best);
}

TEST(ServeService, StreamedCompareEqualsBufferedByteForByte) {
  // Eight schedulers meets the default stream_rows_threshold: the response
  // arrives as a chunk source instead of a buffered body.
  const std::string body =
      R"({"schedulers": ["HEFT", "CPoP", "MCT", "HEFT", "CPoP", "MCT", "HEFT", "CPoP"],)"
      R"( "dataset": "chains?length=8"})";

  ScheduleService streaming;
  const HttpResponse streamed = streaming.handle(make_request("POST", "/v1/compare", body));
  ASSERT_EQ(streamed.status, 200);
  ASSERT_TRUE(static_cast<bool>(streamed.chunk_source));
  EXPECT_TRUE(streamed.body.empty());
  std::string spliced;
  for (std::string chunk; !(chunk = streamed.chunk_source()).empty();) spliced += chunk;

  ScheduleService::Options buffered_options;
  buffered_options.stream_rows_threshold = 0;  // force the buffered path
  ScheduleService buffered(buffered_options);
  const HttpResponse reference = buffered.handle(make_request("POST", "/v1/compare", body));
  ASSERT_EQ(reference.status, 200);
  EXPECT_FALSE(static_cast<bool>(reference.chunk_source));

  // The spliced chunks are the buffered body, byte for byte.
  EXPECT_EQ(spliced, reference.body);
  const Json out = Json::parse(spliced);
  EXPECT_EQ(out.find("rows")->as_array().size(), 8u);

  // Small rosters and timings requests stay buffered.
  const HttpResponse small = streaming.handle(make_request(
      "POST", "/v1/compare", R"({"schedulers": ["HEFT", "CPoP"], "dataset": "chains?length=8"})"));
  ASSERT_EQ(small.status, 200);
  EXPECT_FALSE(static_cast<bool>(small.chunk_source));
  const std::string timed_body =
      R"({"schedulers": ["HEFT", "CPoP", "MCT", "HEFT", "CPoP", "MCT", "HEFT", "CPoP"],)"
      R"( "dataset": "chains?length=8", "timings": true})";
  const HttpResponse timed = streaming.handle(make_request("POST", "/v1/compare", timed_body));
  ASSERT_EQ(timed.status, 200);
  EXPECT_FALSE(static_cast<bool>(timed.chunk_source));
  EXPECT_NE(Json::parse(timed.body).find("timing_us"), nullptr);
}

TEST(ServeService, IdenticalRequestsAreByteIdenticalAcrossThreads) {
  ScheduleService service;
  const std::string body = schedule_body("HEFT", fig1_instance());
  const HttpResponse reference =
      service.handle(make_request("POST", "/v1/schedule", body));
  ASSERT_EQ(reference.status, 200);

  constexpr int kThreads = 4;
  constexpr int kRequestsEach = 16;
  std::vector<std::string> bodies[kThreads];
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &body, &bodies, t] {
      for (int i = 0; i < kRequestsEach; ++i) {
        bodies[t].push_back(service.handle(make_request("POST", "/v1/schedule", body)).body);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& lane : bodies) {
    for (const auto& b : lane) EXPECT_EQ(b, reference.body);
  }
}

TEST(ServeService, ErrorContract) {
  ScheduleService service;

  // Malformed JSON: 400, with parse position, daemon keeps serving.
  HttpResponse resp = service.handle(make_request("POST", "/v1/schedule", "{\"scheduler\": "));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("line"), std::string::npos) << resp.body;

  // Unknown scheduler: the registry's did-you-mean surfaces in the body.
  resp = service.handle(
      make_request("POST", "/v1/schedule", R"({"scheduler": "HEFTT", "dataset": "chains"})"));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("did you mean"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("HEFT"), std::string::npos) << resp.body;

  // Unknown dataset, same contract.
  resp = service.handle(
      make_request("POST", "/v1/schedule", R"({"scheduler": "HEFT", "dataset": "chanis"})"));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("did you mean 'chains'"), std::string::npos) << resp.body;

  // Unknown body key, with a suggestion.
  resp = service.handle(
      make_request("POST", "/v1/schedule", R"({"schedulr": "HEFT", "dataset": "chains"})"));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("did you mean 'scheduler'"), std::string::npos) << resp.body;

  // Neither / both instance sources.
  resp = service.handle(make_request("POST", "/v1/schedule", R"({"scheduler": "HEFT"})"));
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("exactly one of 'instance' and 'dataset'"), std::string::npos);

  // Empty compare roster.
  resp = service.handle(
      make_request("POST", "/v1/compare", R"({"schedulers": [], "dataset": "chains"})"));
  EXPECT_EQ(resp.status, 400);

  // Unknown path: 404 with nearest-path suggestion.
  resp = service.handle(make_request("POST", "/v1/schedul", "{}"));
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("did you mean '/v1/schedule'"), std::string::npos) << resp.body;

  // Wrong method: 405 with Allow.
  resp = service.handle(make_request("GET", "/v1/schedule"));
  EXPECT_EQ(resp.status, 405);
  const std::string* allow = header_of(resp, "Allow");
  ASSERT_NE(allow, nullptr);
  EXPECT_EQ(*allow, "POST");
  resp = service.handle(make_request("POST", "/healthz"));
  EXPECT_EQ(resp.status, 405);

  // After every failure above, a good request still succeeds.
  resp = service.handle(
      make_request("POST", "/v1/schedule", schedule_body("HEFT", fig1_instance())));
  EXPECT_EQ(resp.status, 200) << resp.body;
}

TEST(ServeService, HealthzIsStable) {
  ScheduleService service;
  const HttpResponse resp = service.handle(make_request("GET", "/healthz"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "{\"status\": \"ok\"}\n");
}

TEST(ServeService, MetricsAccountRequests) {
  ScheduleService service;
  const std::string good = schedule_body("HEFT", fig1_instance());
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 200);
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", good)).status, 200);
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", "nonsense")).status, 400);
  ASSERT_EQ(service
                .handle(make_request("POST", "/v1/compare",
                                     R"({"schedulers": ["HEFT"], "dataset": "chains"})"))
                .status,
            200);
  ASSERT_EQ(service.handle(make_request("GET", "/healthz")).status, 200);

  EXPECT_EQ(service.telemetry().requests(Endpoint::kSchedule), 3u);
  EXPECT_EQ(service.telemetry().requests(Endpoint::kSchedule, 2), 2u);
  EXPECT_EQ(service.telemetry().requests(Endpoint::kSchedule, 4), 1u);
  EXPECT_EQ(service.telemetry().requests(Endpoint::kCompare), 1u);
  EXPECT_EQ(service.telemetry().requests(Endpoint::kHealthz), 1u);
  EXPECT_EQ(service.telemetry().requests_total(), 5u);
  EXPECT_EQ(service.telemetry().latency().count(), 5u);

  const HttpResponse metrics = service.handle(make_request("GET", "/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
  // The /metrics request itself is stamped after its body renders, so the
  // exposition reports the five requests that preceded it.
  EXPECT_NE(metrics.body.find("saga_requests_total 5"), std::string::npos) << metrics.body;
  EXPECT_NE(metrics.body.find("saga_requests_total{endpoint=\"schedule\",status=\"2xx\"} 2"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("saga_requests_total{endpoint=\"schedule\",status=\"4xx\"} 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("saga_request_latency_us_bucket{le=\"+Inf\"} 5"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("saga_request_latency_p_us{p=\"99\"}"), std::string::npos);
  EXPECT_NE(metrics.body.find("saga_arena_reuse_total{kind=\"hit\"}"), std::string::npos);
  EXPECT_NE(metrics.body.find("saga_uptime_seconds"), std::string::npos);
}

TEST(ServeService, ArenaReuseIsCountedPerThreadAndService) {
  ScheduleService service;
  const std::string body = schedule_body("HEFT", fig1_instance());
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", body)).status, 200);
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", body)).status, 200);
  ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", body)).status, 200);
  // Same thread: first acquisition is cold, the rest reuse the warm arena.
  EXPECT_EQ(service.telemetry().arena_misses(), 1u);
  EXPECT_EQ(service.telemetry().arena_hits(), 2u);

  // A different service on the same thread gets its own arena (serial-keyed
  // cache), so its first acquisition is cold again.
  ScheduleService other;
  ASSERT_EQ(other.handle(make_request("POST", "/v1/schedule", body)).status, 200);
  EXPECT_EQ(other.telemetry().arena_misses(), 1u);
  EXPECT_EQ(other.telemetry().arena_hits(), 0u);

  // A different thread on the first service is cold once, then warm.
  std::thread worker([&service, &body] {
    ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", body)).status, 200);
    ASSERT_EQ(service.handle(make_request("POST", "/v1/schedule", body)).status, 200);
  });
  worker.join();
  EXPECT_EQ(service.telemetry().arena_misses(), 2u);
  EXPECT_EQ(service.telemetry().arena_hits(), 3u);
}

}  // namespace
}  // namespace saga::serve
