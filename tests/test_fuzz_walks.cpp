#include <gtest/gtest.h>

#include "core/annealer.hpp"
#include "core/perturbation.hpp"
#include "datasets/registry.hpp"
#include "online/online.hpp"
#include "sched/registry.hpp"

/// Fuzz-style robustness suite: long random perturbation walks starting
/// from structurally diverse instances, with every scheduler validated at
/// checkpoints. This is the regime PISA subjects schedulers to — weights
/// driven to extremes, structure randomly rewired — and where placement or
/// tie-breaking bugs surface as validation failures.

namespace saga {
namespace {

class PerturbationWalk : public ::testing::TestWithParam<std::string> {};

TEST_P(PerturbationWalk, SchedulersSurviveWeightExtremes) {
  const auto& dataset = GetParam();
  Rng rng(7);
  auto config = pisa::PerturbationConfig::generic();
  // Wider ranges than Section VI so costs can hit 0 and speeds the floor.
  config.task_cost = {0.0, 5.0};
  config.dependency_cost = {0.0, 5.0};
  config.node_speed = {1e-3, 5.0};
  config.link_strength = {1e-3, 5.0};

  ProblemInstance inst = datasets::generate_instance(dataset, 3, 0);
  const auto roster = benchmark_scheduler_names();
  for (int step = 0; step < 120; ++step) {
    inst = pisa::perturb(inst, config, rng).instance;
    if (step % 40 != 39) continue;  // validate at checkpoints
    for (const auto& name : roster) {
      const auto scheduler = make_scheduler(name, 3);
      const Schedule s = scheduler->schedule(inst);
      const auto result = s.validate(inst);
      ASSERT_TRUE(result.ok) << name << " on " << dataset << " step " << step << ": "
                             << result.message;
    }
  }
}

TEST_P(PerturbationWalk, OnlinePoliciesSurviveTheSameWalk) {
  const auto& dataset = GetParam();
  Rng rng(11);
  const auto config = pisa::PerturbationConfig::generic();
  ProblemInstance inst = datasets::generate_instance(dataset, 5, 1);
  for (int step = 0; step < 80; ++step) {
    inst = pisa::perturb(inst, config, rng).instance;
  }
  for (const auto& name : online::online_policy_names()) {
    const auto policy = online::make_online_policy(name, 5);
    const Schedule s = online::simulate_online(inst, *policy);
    ASSERT_TRUE(s.validate(inst).ok) << name << " on " << dataset;
  }
}

INSTANTIATE_TEST_SUITE_P(DiverseSeeds, PerturbationWalk,
                         ::testing::Values("chains", "blast", "montage", "stats"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(FuzzExtremes, SingleNodeNetworkNeverBreaks) {
  // Degenerate network: everything must serialise, every scheduler valid.
  ProblemInstance inst;
  Rng rng(2);
  for (int i = 0; i < 6; ++i) inst.graph.add_task(rng.uniform());
  inst.graph.add_dependency(0, 3, 1.0);
  inst.graph.add_dependency(1, 3, 1.0);
  inst.graph.add_dependency(3, 5, 1.0);
  inst.network = Network(1);
  for (const auto& name : benchmark_scheduler_names()) {
    const Schedule s = make_scheduler(name, 1)->schedule(inst);
    EXPECT_TRUE(s.validate(inst).ok) << name;
    // One node: makespan is exactly the total cost (no comm, no overlap).
    EXPECT_NEAR(s.makespan(), inst.graph.total_cost(), 1e-9) << name;
  }
}

TEST(FuzzExtremes, DenseGraphFromSaturatingAddDependency) {
  // Drive AddDependency until the DAG is maximally dense, then schedule.
  Rng rng(3);
  pisa::PerturbationConfig config;
  for (std::size_t i = 0; i < pisa::kPerturbationOpCount; ++i) config.enabled[i] = false;
  config.set_enabled(pisa::PerturbationOp::kAddDependency, true);

  ProblemInstance inst;
  for (int i = 0; i < 7; ++i) inst.graph.add_task(0.5);
  inst.network = Network(3);
  for (int step = 0; step < 200; ++step) {
    inst = pisa::perturb(inst, config, rng).instance;
  }
  // A 7-task DAG saturates at 21 edges.
  EXPECT_EQ(inst.graph.dependency_count(), 21u);
  for (const auto& name : benchmark_scheduler_names()) {
    EXPECT_TRUE(make_scheduler(name, 1)->schedule(inst).validate(inst).ok) << name;
  }
}

TEST(FuzzExtremes, RemovalsDriveGraphEdgeless) {
  Rng rng(4);
  pisa::PerturbationConfig config;
  for (std::size_t i = 0; i < pisa::kPerturbationOpCount; ++i) config.enabled[i] = false;
  config.set_enabled(pisa::PerturbationOp::kRemoveDependency, true);

  ProblemInstance inst = pisa::random_chain_instance(9);
  for (std::size_t step = 0; step < 20; ++step) {
    const auto result = pisa::perturb(inst, config, rng);
    if (!result.applied.has_value()) break;  // nothing left to remove
    inst = result.instance;
  }
  EXPECT_EQ(inst.graph.dependency_count(), 0u);
  for (const auto& name : benchmark_scheduler_names()) {
    EXPECT_TRUE(make_scheduler(name, 1)->schedule(inst).validate(inst).ok) << name;
  }
}

}  // namespace
}  // namespace saga
