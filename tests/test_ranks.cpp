#include <gtest/gtest.h>

#include "sched/ranks.hpp"

namespace saga {
namespace {

/// Chain a -> b on a 2-node network with speeds {1, 2} and strength 0.5.
ProblemInstance small_chain() {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 2.0);
  const TaskId b = inst.graph.add_task("b", 4.0);
  inst.graph.add_dependency(a, b, 1.0);
  inst.network = Network(2);
  inst.network.set_speed(1, 2.0);
  inst.network.set_strength(0, 1, 0.5);
  return inst;
}

TEST(Ranks, MeanExecTimes) {
  const auto inst = small_chain();
  // mean(1/s) = (1 + 0.5)/2 = 0.75.
  const auto w = mean_exec_times(inst);
  EXPECT_DOUBLE_EQ(w[0], 1.5);
  EXPECT_DOUBLE_EQ(w[1], 3.0);
}

TEST(Ranks, UpwardRankOfChain) {
  const auto inst = small_chain();
  const auto up = upward_ranks(inst);
  // Single pair (0,1) with strength 0.5: mean inverse strength = 2.
  // rank_u(b) = 3.0; rank_u(a) = 1.5 + (1*2 + 3.0) = 6.5.
  EXPECT_DOUBLE_EQ(up[1], 3.0);
  EXPECT_DOUBLE_EQ(up[0], 6.5);
}

TEST(Ranks, DownwardRankOfChain) {
  const auto inst = small_chain();
  const auto down = downward_ranks(inst);
  // rank_d(a) = 0; rank_d(b) = 0 + 1.5 + 2 = 3.5.
  EXPECT_DOUBLE_EQ(down[0], 0.0);
  EXPECT_DOUBLE_EQ(down[1], 3.5);
}

TEST(Ranks, UpwardPlusDownwardConstantOnChain) {
  // On a pure chain every task lies on the critical path, so
  // rank_u + rank_d is the same for all of them.
  const auto inst = small_chain();
  const auto up = upward_ranks(inst);
  const auto down = downward_ranks(inst);
  EXPECT_DOUBLE_EQ(up[0] + down[0], up[1] + down[1]);
}

TEST(Ranks, StaticLevelIgnoresCommunication) {
  const auto inst = small_chain();
  const auto sl = static_levels(inst);
  EXPECT_DOUBLE_EQ(sl[1], 3.0);
  EXPECT_DOUBLE_EQ(sl[0], 4.5);  // 1.5 + 3.0, no comm term
}

TEST(Ranks, UpwardRankDecreasesAlongEdges) {
  const auto inst = fig1_instance();
  const auto up = upward_ranks(inst);
  for (const auto& [from, to] : inst.graph.dependencies()) {
    EXPECT_GT(up[from], up[to]);
  }
}

TEST(Ranks, DownwardRankIncreasesAlongEdges) {
  const auto inst = fig1_instance();
  const auto down = downward_ranks(inst);
  for (const auto& [from, to] : inst.graph.dependencies()) {
    EXPECT_LT(down[from], down[to]);
  }
}

TEST(Ranks, CriticalPathIsSourceToSinkChain) {
  const auto inst = fig1_instance();
  const auto cp = critical_path(inst);
  ASSERT_FALSE(cp.empty());
  EXPECT_TRUE(inst.graph.predecessors(cp.front()).empty());
  EXPECT_TRUE(inst.graph.successors(cp.back()).empty());
  for (std::size_t i = 0; i + 1 < cp.size(); ++i) {
    EXPECT_TRUE(inst.graph.has_dependency(cp[i], cp[i + 1]));
  }
}

TEST(Ranks, CriticalPathOfFig1TakesHeavierBranch) {
  // In Fig. 1, the t1->t3->t4 branch dominates (t3 costs 2.2 vs t2's 1.2,
  // and its edges are no lighter on average).
  const auto inst = fig1_instance();
  const auto cp = critical_path(inst);
  ASSERT_EQ(cp.size(), 3u);
  EXPECT_EQ(cp[0], 0u);  // t1
  EXPECT_EQ(cp[1], 2u);  // t3
  EXPECT_EQ(cp[2], 3u);  // t4
}

TEST(Ranks, CriticalPathOfIndependentTasksIsSingleTask) {
  ProblemInstance inst;
  inst.graph.add_task("small", 1.0);
  inst.graph.add_task("big", 5.0);
  inst.network = Network(2);
  const auto cp = critical_path(inst);
  ASSERT_EQ(cp.size(), 1u);
  EXPECT_EQ(cp[0], 1u);
}

TEST(Ranks, EmptyGraph) {
  ProblemInstance inst;
  inst.network = Network(2);
  EXPECT_TRUE(critical_path(inst).empty());
  EXPECT_TRUE(upward_ranks(inst).empty());
}

TEST(Ranks, ZeroCostTasksYieldZeroRanks) {
  ProblemInstance inst;
  const TaskId a = inst.graph.add_task("a", 0.0);
  const TaskId b = inst.graph.add_task("b", 0.0);
  inst.graph.add_dependency(a, b, 0.0);
  inst.network = Network(2);
  const auto up = upward_ranks(inst);
  EXPECT_DOUBLE_EQ(up[0], 0.0);
  EXPECT_DOUBLE_EQ(up[1], 0.0);
}

}  // namespace
}  // namespace saga
